//! Optimizers: SGD (with momentum) and Adam.
//!
//! The paper trains every competitor with Adam \[16\]; its CelebA experiment
//! gives MD-GAN and the baselines *different* Adam hyper-parameters, which
//! is why [`AdamConfig`] is a first-class value.

use crate::layer::Layer;
use crate::layers::Sequential;
use md_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the Adam optimizer.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate `α`.
    pub lr: f32,
    /// First-moment decay `β₁`.
    pub beta1: f32,
    /// Second-moment decay `β₂`.
    pub beta2: f32,
    /// Numerical fuzz `ε`.
    pub eps: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 2e-4,
            beta1: 0.5,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

impl AdamConfig {
    /// The paper's CelebA generator setting for MD-GAN
    /// (α=0.001, β₁=0.0, β₂=0.9).
    pub fn mdgan_celeba_generator() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.0,
            beta2: 0.9,
            eps: 1e-8,
        }
    }

    /// The paper's CelebA discriminator setting for MD-GAN
    /// (α=0.004, β₁=0.0, β₂=0.9).
    pub fn mdgan_celeba_discriminator() -> Self {
        AdamConfig {
            lr: 4e-3,
            beta1: 0.0,
            beta2: 0.9,
            eps: 1e-8,
        }
    }

    /// The paper's CelebA generator setting for standalone / FL-GAN
    /// (α=0.003, β₁=0.5, β₂=0.999).
    pub fn baseline_celeba_generator() -> Self {
        AdamConfig {
            lr: 3e-3,
            beta1: 0.5,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// The paper's CelebA discriminator setting for standalone / FL-GAN
    /// (α=0.002, β₁=0.5, β₂=0.999).
    pub fn baseline_celeba_discriminator() -> Self {
        AdamConfig {
            lr: 2e-3,
            beta1: 0.5,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// Serializable snapshot of an [`Adam`] optimizer: the step counter plus
/// the first/second moments flattened in network parameter order — exactly
/// what a checkpoint needs to resume training bit-identically.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AdamState {
    /// Steps taken (`t` in the bias-correction terms).
    pub t: u64,
    /// First moments, flattened (empty before the first step).
    pub m: Vec<f32>,
    /// Second moments, flattened (empty before the first step).
    pub v: Vec<f32>,
}

/// Adam optimizer state bound to one network's parameter layout.
pub struct Adam {
    cfg: AdamConfig,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an optimizer; moment buffers are allocated lazily on the
    /// first step.
    pub fn new(cfg: AdamConfig) -> Self {
        Adam {
            cfg,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> AdamConfig {
        self.cfg
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.cfg.lr
    }

    /// Overrides the learning rate (recovery policies drop it after a
    /// divergence rollback).
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }

    /// Snapshots the full optimizer state for checkpointing.
    pub fn export_state(&self) -> AdamState {
        AdamState {
            t: self.t,
            m: self
                .m
                .iter()
                .flat_map(|t| t.data().iter().copied())
                .collect(),
            v: self
                .v
                .iter()
                .flat_map(|t| t.data().iter().copied())
                .collect(),
        }
    }

    /// Restores a snapshot taken by [`Adam::export_state`]. The moment
    /// buffers are re-shaped against `net`, which must have the parameter
    /// layout of the network the snapshot was taken with.
    ///
    /// # Errors
    /// Returns a message when the flattened moment lengths do not match
    /// `net`'s parameter count (empty moments — a pre-first-step snapshot —
    /// are always valid and reset the lazy buffers).
    pub fn import_state(&mut self, state: &AdamState, net: &Sequential) -> Result<(), String> {
        if state.m.len() != state.v.len() {
            return Err(format!(
                "Adam moment lengths disagree: m={} v={}",
                state.m.len(),
                state.v.len()
            ));
        }
        if state.m.is_empty() {
            self.t = state.t;
            self.m.clear();
            self.v.clear();
            return Ok(());
        }
        let expect: usize = net.params().iter().map(|p| p.len()).sum();
        if state.m.len() != expect {
            return Err(format!(
                "Adam moment length {} != network parameter count {expect}",
                state.m.len()
            ));
        }
        let mut m = Vec::new();
        let mut v = Vec::new();
        let mut off = 0;
        for p in net.params() {
            let n = p.len();
            m.push(Tensor::new(p.shape(), state.m[off..off + n].to_vec()));
            v.push(Tensor::new(p.shape(), state.v[off..off + n].to_vec()));
            off += n;
        }
        self.t = state.t;
        self.m = m;
        self.v = v;
        Ok(())
    }

    /// Applies one Adam update using the gradients accumulated in `net`.
    ///
    /// Does **not** zero the gradients — callers own that (they may want to
    /// inspect or accumulate across micro-batches first).
    pub fn step(&mut self, net: &mut Sequential) {
        self.t += 1;
        let t = self.t as i32;
        let cfg = self.cfg;
        let bc1 = 1.0 - cfg.beta1.powi(t);
        let bc2 = 1.0 - cfg.beta2.powi(t);
        let (m, v) = (&mut self.m, &mut self.v);
        net.visit_params_and_grads(|idx, p, g| {
            if m.len() <= idx {
                m.push(Tensor::zeros(p.shape()));
                v.push(Tensor::zeros(p.shape()));
            }
            assert_eq!(
                m[idx].shape(),
                p.shape(),
                "Adam state shape drift at param {idx}"
            );
            let md = m[idx].data_mut();
            let vd = v[idx].data_mut();
            for ((pv, &gv), (mv, vv)) in p
                .data_mut()
                .iter_mut()
                .zip(g.data())
                .zip(md.iter_mut().zip(vd.iter_mut()))
            {
                *mv = cfg.beta1 * *mv + (1.0 - cfg.beta1) * gv;
                *vv = cfg.beta2 * *vv + (1.0 - cfg.beta2) * gv * gv;
                let mhat = *mv / bc1;
                let vhat = *vv / bc2;
                *pv -= cfg.lr * mhat / (vhat.sqrt() + cfg.eps);
            }
        });
    }
}

/// Plain SGD with optional momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Applies one update using the gradients accumulated in `net`.
    pub fn step(&mut self, net: &mut Sequential) {
        let (lr, mom) = (self.lr, self.momentum);
        let vel = &mut self.velocity;
        net.visit_params_and_grads(|idx, p, g| {
            if vel.len() <= idx {
                vel.push(Tensor::zeros(p.shape()));
            }
            let vd = vel[idx].data_mut();
            for ((pv, &gv), vv) in p.data_mut().iter_mut().zip(g.data()).zip(vd.iter_mut()) {
                *vv = mom * *vv + gv;
                *pv -= lr * *vv;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use crate::layer::Layer;
    use crate::layers::Dense;
    use crate::loss::mse;
    use md_tensor::rng::Rng64;

    fn one_layer(rng: &mut Rng64) -> Sequential {
        Sequential::new().push(Dense::new(2, 1, Init::XavierUniform, rng))
    }

    /// Trains y = 2*x0 - 3*x1 + 1; loss must drop by >90%.
    fn fit(opt_step: &mut dyn FnMut(&mut Sequential), rng: &mut Rng64) -> (f32, f32) {
        let mut net = one_layer(rng);
        let xs = Tensor::randn(&[64, 2], rng);
        let ys = Tensor::new(
            &[64, 1],
            (0..64)
                .map(|i| 2.0 * xs.at(&[i, 0]) - 3.0 * xs.at(&[i, 1]) + 1.0)
                .collect(),
        );
        let mut first = 0.0;
        let mut last = 0.0;
        for it in 0..300 {
            let pred = net.forward(&xs, true);
            let (loss, grad) = mse(&pred, &ys);
            if it == 0 {
                first = loss;
            }
            last = loss;
            net.zero_grad();
            net.backward(&grad);
            opt_step(&mut net);
        }
        (first, last)
    }

    #[test]
    fn adam_fits_linear_regression() {
        let mut rng = Rng64::seed_from_u64(1);
        let mut adam = Adam::new(AdamConfig {
            lr: 0.05,
            ..AdamConfig::default()
        });
        let (first, last) = fit(&mut |n| adam.step(n), &mut rng);
        assert!(last < 0.05 * first, "loss {first} -> {last}");
    }

    #[test]
    fn sgd_fits_linear_regression() {
        let mut rng = Rng64::seed_from_u64(2);
        let mut sgd = Sgd::new(0.05, 0.9);
        let (first, last) = fit(&mut |n| sgd.step(n), &mut rng);
        assert!(last < 0.1 * first, "loss {first} -> {last}");
    }

    #[test]
    fn adam_first_step_size_is_lr() {
        // With bias correction, |Δp| of the very first step ≈ lr for any
        // nonzero gradient (a well-known Adam property).
        let mut rng = Rng64::seed_from_u64(3);
        let mut net = one_layer(&mut rng);
        let before = net.get_params_flat();
        let x = Tensor::ones(&[1, 2]);
        let y = net.forward(&x, true);
        net.zero_grad();
        net.backward(&Tensor::ones(y.shape()));
        let mut adam = Adam::new(AdamConfig {
            lr: 0.01,
            eps: 0.0,
            ..AdamConfig::default()
        });
        adam.step(&mut net);
        let after = net.get_params_flat();
        let grads = net.get_grads_flat();
        for ((b, a), g) in before.iter().zip(&after).zip(&grads) {
            if g.abs() > 1e-6 {
                assert!(
                    ((b - a).abs() - 0.01).abs() < 1e-4,
                    "step size {}",
                    (b - a).abs()
                );
            }
        }
        assert_eq!(adam.steps(), 1);
    }

    #[test]
    fn adam_state_roundtrip_resumes_bit_identically() {
        // Train A for 10 steps, snapshot, train 10 more; B resumes from the
        // snapshot and must match A parameter-for-parameter (bitwise).
        let mut rng = Rng64::seed_from_u64(5);
        let mut net_a = one_layer(&mut rng);
        let xs = Tensor::randn(&[16, 2], &mut rng);
        let ys = Tensor::randn(&[16, 1], &mut rng);
        let mut adam_a = Adam::new(AdamConfig::default());
        let do_step = |net: &mut Sequential, adam: &mut Adam| {
            let pred = net.forward(&xs, true);
            let (_, grad) = mse(&pred, &ys);
            net.zero_grad();
            net.backward(&grad);
            adam.step(net);
        };
        for _ in 0..10 {
            do_step(&mut net_a, &mut adam_a);
        }
        let snap_params = net_a.get_params_flat();
        let snap_opt = adam_a.export_state();
        assert_eq!(snap_opt.t, 10);
        assert_eq!(snap_opt.m.len(), net_a.num_params());

        let mut rng_b = Rng64::seed_from_u64(999);
        let mut net_b = one_layer(&mut rng_b);
        net_b.set_params_flat(&snap_params);
        let mut adam_b = Adam::new(AdamConfig::default());
        adam_b.import_state(&snap_opt, &net_b).unwrap();
        for _ in 0..10 {
            do_step(&mut net_a, &mut adam_a);
            do_step(&mut net_b, &mut adam_b);
        }
        assert_eq!(net_a.get_params_flat(), net_b.get_params_flat());
        assert_eq!(adam_a.export_state(), adam_b.export_state());
    }

    #[test]
    fn adam_import_rejects_mismatched_layout() {
        let mut rng = Rng64::seed_from_u64(6);
        let net = one_layer(&mut rng);
        let mut adam = Adam::new(AdamConfig::default());
        let bad = AdamState {
            t: 3,
            m: vec![0.0; 5],
            v: vec![0.0; 5],
        };
        assert!(adam.import_state(&bad, &net).is_err());
        let lopsided = AdamState {
            t: 1,
            m: vec![0.0; 3],
            v: vec![0.0; 2],
        };
        assert!(adam.import_state(&lopsided, &net).is_err());
        // Pre-first-step snapshots are valid and reset the lazy buffers.
        let fresh = AdamState::default();
        adam.import_state(&fresh, &net).unwrap();
        assert_eq!(adam.steps(), 0);
    }

    #[test]
    fn zero_gradient_leaves_params_nearly_fixed() {
        let mut rng = Rng64::seed_from_u64(4);
        let mut net = one_layer(&mut rng);
        let before = net.get_params_flat();
        net.zero_grad();
        let mut adam = Adam::new(AdamConfig::default());
        adam.step(&mut net);
        let after = net.get_params_flat();
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 1e-6);
        }
    }

    #[test]
    fn paper_celeba_configs_match_text() {
        let g = AdamConfig::mdgan_celeba_generator();
        assert_eq!((g.lr, g.beta1, g.beta2), (1e-3, 0.0, 0.9));
        let d = AdamConfig::baseline_celeba_discriminator();
        assert_eq!((d.lr, d.beta1, d.beta2), (2e-3, 0.5, 0.999));
    }
}
