//! Integration tests for degenerate (zero-size) kernel shapes and the
//! bitwise-determinism guarantee of the persistent worker pool.
//!
//! Every kernel must (a) accept empty operands without panicking and
//! (b) produce bitwise-identical bytes for any thread count. The
//! determinism tests use problem sizes above `PAR_THRESHOLD` so the
//! pooled path is actually exercised when more than one slot is allowed.

use md_tensor::ops::conv::{
    conv2d_backward, conv2d_forward, conv_transpose2d_backward, conv_transpose2d_forward,
};
use md_tensor::parallel::scoped_max_threads;
use md_tensor::pool;
use md_tensor::rng::Rng64;
use md_tensor::Tensor;
use proptest::prelude::*;

/// Asserts two tensors carry the same shape and the same f32 bit patterns.
fn assert_bitwise_eq(a: &Tensor, b: &Tensor) {
    assert_eq!(a.shape(), b.shape(), "shape mismatch");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "element {i} differs bitwise: {x} vs {y}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// All four matmul variants accept a zero dimension anywhere and
    /// return an empty (or all-zero) result of the right shape.
    #[test]
    fn matmul_family_handles_zero_dims(m in 0usize..4, k in 0usize..4, n in 0usize..4) {
        // Force at least one dimension to zero.
        let (m, k, n) = if m * k * n != 0 { (0, k, n) } else { (m, k, n) };
        let mut rng = Rng64::seed_from_u64((m * 16 + k * 4 + n) as u64);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        prop_assert_eq!(a.matmul(&b).shape(), &[m, n]);
        let bt = Tensor::randn(&[n, k], &mut rng);
        prop_assert_eq!(a.matmul_nt(&bt).shape(), &[m, n]);
        let at = Tensor::randn(&[k, m], &mut rng);
        let c = at.matmul_tn(&b);
        prop_assert_eq!(c.shape(), &[m, n]);
        // k == 0 must yield zeros, not garbage.
        prop_assert!(c.data().iter().all(|v| v.is_finite()));
        prop_assert_eq!(a.t().shape(), &[k, m]);
    }

    /// Zero-batch convolutions (forward and backward) are well-defined.
    #[test]
    fn zero_batch_conv_round_trips(cin in 1usize..3, cout in 1usize..3, hw in 3usize..6) {
        let mut rng = Rng64::seed_from_u64((cin * 8 + cout * 2 + hw) as u64);
        let x = Tensor::zeros(&[0, cin, hw, hw]);
        let w = Tensor::randn(&[cout, cin, 3, 3], &mut rng);
        let bias = Tensor::zeros(&[cout]);
        let y = conv2d_forward(&x, &w, &bias, 1, 1);
        prop_assert_eq!(y.shape(), &[0, cout, hw, hw]);
        let (gx, gw, gb) = conv2d_backward(&x, &w, &y, 1, 1);
        prop_assert_eq!(gx.shape(), x.shape());
        prop_assert!(gw.data().iter().all(|&v| v == 0.0));
        prop_assert!(gb.data().iter().all(|&v| v == 0.0));

        let wt = Tensor::randn(&[cin, cout, 4, 4], &mut rng);
        let xt = Tensor::zeros(&[0, cin, hw, hw]);
        let yt = conv_transpose2d_forward(&xt, &wt, &bias, 2, 1);
        prop_assert_eq!(yt.shape()[0], 0);
        let (gxt, gwt, gbt) = conv_transpose2d_backward(&xt, &wt, &yt, 2, 1);
        prop_assert_eq!(gxt.shape(), xt.shape());
        prop_assert!(gwt.data().iter().all(|&v| v == 0.0));
        prop_assert!(gbt.data().iter().all(|&v| v == 0.0));
    }
}

#[test]
fn matmul_bitwise_identical_across_thread_counts() {
    // 256^3 => n * work_hint = 256 * 65536 ≈ 16.7M > PAR_THRESHOLD, so the
    // 4-slot run really goes through the pool.
    let mut rng = Rng64::seed_from_u64(7);
    let a = Tensor::randn(&[256, 256], &mut rng);
    let b = Tensor::randn(&[256, 256], &mut rng);

    let seq = {
        let _g = scoped_max_threads(1);
        (a.matmul(&b), a.matmul_nt(&b), a.matmul_tn(&b))
    };
    let par = {
        let _g = scoped_max_threads(4);
        (a.matmul(&b), a.matmul_nt(&b), a.matmul_tn(&b))
    };
    assert_bitwise_eq(&seq.0, &par.0);
    assert_bitwise_eq(&seq.1, &par.1);
    assert_bitwise_eq(&seq.2, &par.2);
}

#[test]
fn matmul_bitwise_identical_across_thread_counts_odd_sizes() {
    // Odd, non-tile-multiple extents: 301 rows leave a 13-row remainder
    // block (and a 1-row remainder micro-tile), 257 crosses the KC=256
    // panel edge, 263 leaves a 7-column sliver and spills into a second
    // NC=256 column panel, so the shared-panel schedule's pack phase and
    // (row block x column panel) compute grid both really split across the
    // pool. Total work 301*257*263 ≈ 20M clears PAR_THRESHOLD.
    let (m, k, n) = (301, 257, 263);
    let mut rng = Rng64::seed_from_u64(23);
    let a = Tensor::randn(&[m, k], &mut rng);
    let b = Tensor::randn(&[k, n], &mut rng);
    let bt = Tensor::randn(&[n, k], &mut rng);
    let at = Tensor::randn(&[k, m], &mut rng);

    let run = |threads: usize| {
        let _g = scoped_max_threads(threads);
        (a.matmul(&b), a.matmul_nt(&bt), at.matmul_tn(&b))
    };
    // 1 is the serial spec; 2 and 3 exercise uneven slot assignments of
    // the 10x2-cell grid (3 divides neither the 20 cells nor the 12 pack
    // tasks); 8 oversubscribes small hosts. All must be bitwise equal.
    let seq = run(1);
    for threads in [2, 3, 8] {
        let par = run(threads);
        assert_bitwise_eq(&seq.0, &par.0);
        assert_bitwise_eq(&seq.1, &par.1);
        assert_bitwise_eq(&seq.2, &par.2);
    }
}

#[test]
fn transpose_bitwise_identical_across_thread_counts() {
    // 3000*3000 = 9M elements > PAR_THRESHOLD (work_hint is the row length).
    let mut rng = Rng64::seed_from_u64(11);
    let a = Tensor::randn(&[3000, 3000], &mut rng);
    let seq = {
        let _g = scoped_max_threads(1);
        a.t()
    };
    let par = {
        let _g = scoped_max_threads(4);
        a.t()
    };
    assert_bitwise_eq(&seq, &par);
}

#[test]
fn conv_bitwise_identical_across_thread_counts() {
    // b=4, cin=8, k=3 (ckk=72), cout=32, 32x32 output =>
    // 4 * 72*32*1024 ≈ 9.4M > PAR_THRESHOLD.
    let mut rng = Rng64::seed_from_u64(13);
    let x = Tensor::randn(&[4, 8, 32, 32], &mut rng);
    let w = Tensor::randn(&[32, 8, 3, 3], &mut rng);
    let bias = Tensor::randn(&[32], &mut rng);

    let run = |threads: usize| {
        let _g = scoped_max_threads(threads);
        let y = conv2d_forward(&x, &w, &bias, 1, 1);
        let (gx, gw, gb) = conv2d_backward(&x, &w, &y, 1, 1);
        (y, gx, gw, gb)
    };
    let seq = run(1);
    let par = run(4);
    assert_bitwise_eq(&seq.0, &par.0);
    assert_bitwise_eq(&seq.1, &par.1);
    assert_bitwise_eq(&seq.2, &par.2);
    assert_bitwise_eq(&seq.3, &par.3);
}

#[test]
fn conv_transpose_bitwise_identical_across_thread_counts() {
    let mut rng = Rng64::seed_from_u64(17);
    let x = Tensor::randn(&[4, 32, 16, 16], &mut rng);
    let w = Tensor::randn(&[32, 16, 4, 4], &mut rng);
    let bias = Tensor::randn(&[16], &mut rng);

    let run = |threads: usize| {
        let _g = scoped_max_threads(threads);
        let y = conv_transpose2d_forward(&x, &w, &bias, 2, 1);
        let (gx, gw, gb) = conv_transpose2d_backward(&x, &w, &y, 2, 1);
        (y, gx, gw, gb)
    };
    let seq = run(1);
    let par = run(4);
    assert_bitwise_eq(&seq.0, &par.0);
    assert_bitwise_eq(&seq.1, &par.1);
    assert_bitwise_eq(&seq.2, &par.2);
    assert_bitwise_eq(&seq.3, &par.3);
}

#[test]
fn steady_state_kernels_reuse_pool_threads() {
    let _g = scoped_max_threads(4);
    let mut rng = Rng64::seed_from_u64(19);
    let a = Tensor::randn(&[256, 256], &mut rng);
    let b = Tensor::randn(&[256, 256], &mut rng);
    // Warm the pool, then check that repeated kernel calls spawn nothing.
    let _ = a.matmul(&b);
    let spawned = pool::stats().threads_spawned;
    for _ in 0..8 {
        let _ = a.matmul(&b);
        let _ = a.matmul_tn(&b);
    }
    let stats = pool::stats();
    assert_eq!(
        stats.threads_spawned, spawned,
        "steady-state kernel calls must not spawn OS threads"
    );
    assert_eq!(stats.threads_spawned, stats.pool_size);
}
