//! Property tests pinning the packed, cache-blocked GEMM kernel to the
//! naive in-order reference — **bitwise** — across odd and degenerate
//! shapes for all three [`Layout`] variants.
//!
//! The shapes are drawn from a set chosen to straddle every tiling edge:
//! zero-size dims, `m = k = n = 1`, sizes just below/at/above the
//! register-tile extents (`MR`, `NR`), and non-multiples of all of them.
//! Larger shapes that cross the `KC`/`NC`/`MC` panel boundaries are pinned
//! by the kernel's unit tests (`bitwise_matches_naive_across_edges`).

use md_tensor::ops::gemm::{gemm_acc_into, gemm_into, naive_gemm, Layout};
use md_tensor::rng::Rng64;
use proptest::prelude::*;

/// Dimension values straddling the micro-kernel tile edges: zero, one,
/// sizes just below/at/above `MR`/`NR`, and non-multiples of all of them.
const DIMS: [usize; 15] = [0, 1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 31, 33, 63, 65];

const LAYOUTS: [Layout; 3] = [Layout::NN, Layout::NT, Layout::TN];

/// Operand buffers with the storage lengths the layout dictates, seeded
/// with normals plus a sprinkling of exact and signed zeros (the removed
/// zero-skip branch must not reappear as a special case).
fn operands(layout: Layout, m: usize, k: usize, n: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
    let (a_len, b_len) = match layout {
        Layout::NN => (m * k, k * n),
        Layout::NT => (m * k, n * k),
        Layout::TN => (k * m, k * n),
    };
    let mut rng = Rng64::seed_from_u64(seed);
    let fill = |len: usize, rng: &mut Rng64| {
        (0..len)
            .map(|i| match i % 7 {
                0 => 0.0,
                3 => -0.0,
                _ => rng.normal(),
            })
            .collect::<Vec<f32>>()
    };
    let a = fill(a_len, &mut rng);
    let b = fill(b_len, &mut rng);
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `gemm_into` is bitwise identical to the unblocked in-order
    /// reference on every shape/layout combination.
    #[test]
    fn packed_kernel_matches_naive_bitwise(
        li in 0usize..3,
        mi in 0usize..15,
        ki in 0usize..15,
        ni in 0usize..15,
        seed in 0u64..1024,
    ) {
        let (layout, m, k, n) = (LAYOUTS[li], DIMS[mi], DIMS[ki], DIMS[ni]);
        let (a, b) = operands(layout, m, k, n, seed);
        let mut out = vec![f32::NAN; m * n]; // overwrite must not read this
        gemm_into(layout, &a, &b, &mut out, m, k, n);
        let reference = naive_gemm(layout, &a, &b, m, k, n);
        for (i, (x, y)) in out.iter().zip(&reference).enumerate() {
            prop_assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "element {} differs: packed {} vs naive {}",
                i, x, y
            );
        }
    }

    /// `gemm_acc_into` continues the in-order chain from the existing
    /// output value, bitwise, for every layout.
    #[test]
    fn acc_kernel_continues_seeded_chain_bitwise(
        li in 0usize..3,
        mi in 0usize..15,
        ki in 0usize..15,
        ni in 0usize..15,
        seed in 0u64..1024,
    ) {
        let (layout, m, k, n) = (LAYOUTS[li], DIMS[mi], DIMS[ki], DIMS[ni]);
        let (a, b) = operands(layout, m, k, n, seed);
        let mut rng = Rng64::seed_from_u64(seed ^ 0xABCD);
        let seed_out: Vec<f32> = (0..m * n).map(|_| rng.normal()).collect();
        let mut out = seed_out.clone();
        gemm_acc_into(layout, &a, &b, &mut out, m, k, n);
        // Reference: the same fused chain, seeded from the prior value.
        for i in 0..m {
            for j in 0..n {
                let mut s = seed_out[i * n + j];
                for p in 0..k {
                    let av = match layout {
                        Layout::NN | Layout::NT => a[i * k + p],
                        Layout::TN => a[p * m + i],
                    };
                    let bv = match layout {
                        Layout::NN | Layout::TN => b[p * n + j],
                        Layout::NT => b[j * k + p],
                    };
                    s = av.mul_add(bv, s);
                }
                prop_assert_eq!(s.to_bits(), out[i * n + j].to_bits());
            }
        }
    }
}
