//! Steady-state zero-allocation check for the workspace buffer pool.
//!
//! A fixed mix of tensor ops (matmul family, transpose, elementwise,
//! reductions, clone) runs for a few warmup rounds, after which every
//! buffer the mix needs exists on the shelf — so further rounds must be
//! served entirely by recycling: `ws_misses` stays flat.
//!
//! This file deliberately holds a **single** test: the workspace counters
//! are process-global, and a concurrently running test binary would make
//! flatness assertions racy.

use md_tensor::rng::Rng64;
use md_tensor::workspace;
use md_tensor::Tensor;

fn round(a: &Tensor, b: &Tensor, w: &Tensor) {
    let h = a.matmul(b); // (96, 64)
    let h2 = h.matmul_nt(w); // (96, 48)
    let ht = h2.t(); // (48, 96)
    let g = ht.matmul(&h2); // (48, 48)
    let s = g.sum_axis0(); // (48)
    let sm = h2.softmax_rows();
    let c = sm.clone();
    let d = c.add(&sm);
    std::hint::black_box((&h, &s, &d));
}

#[test]
fn repeated_op_mix_allocates_nothing_after_warmup() {
    let mut rng = Rng64::seed_from_u64(31);
    let a = Tensor::randn(&[96, 80], &mut rng);
    let b = Tensor::randn(&[80, 64], &mut rng);
    let w = Tensor::randn(&[48, 64], &mut rng);

    for _ in 0..3 {
        round(&a, &b, &w);
    }
    let warm = workspace::stats();
    for _ in 0..8 {
        round(&a, &b, &w);
    }
    let end = workspace::stats();
    assert_eq!(
        end.misses, warm.misses,
        "steady-state op mix must not allocate: ws_misses went {} -> {}",
        warm.misses, end.misses
    );
    assert!(
        end.hits > warm.hits,
        "the op mix should be drawing buffers from the shelf"
    );
}
