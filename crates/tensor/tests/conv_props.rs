//! Property tests pinning the **implicit-GEMM** convolution paths to the
//! materialized `im2col`/`col2im` pipeline — **bitwise** — across
//! stride/padding/channel/odd-spatial shapes.
//!
//! The references below are the pre-implicit implementations, rebuilt from
//! the public `im2col` / `col2im` / `matmul_*` building blocks: unfold the
//! column matrix, multiply, (scatter). The production paths pack the same
//! patch values on the fly inside the GEMM and fuse the col2im scatter
//! into the GEMM epilogue; since the per-element `mul_add` chains and the
//! scatter accumulation order are unchanged, every output must match the
//! materialized pipeline bit for bit.

use md_tensor::ops::conv::{
    col2im, conv2d_backward, conv2d_forward, conv_out_dim, conv_transpose2d_backward,
    conv_transpose2d_forward, conv_transpose_out_dim, im2col,
};
use md_tensor::ops::matmul::{matmul_into, matmul_nt_acc_into};
use md_tensor::rng::Rng64;
use md_tensor::tensor::Tensor;
use proptest::prelude::*;

/// Normals with a sprinkling of exact and signed zeros, so a zero-skip
/// shortcut can never sneak back into any conv path.
fn filled(shape: &[usize], seed: u64) -> Tensor {
    let len: usize = shape.iter().product();
    let mut rng = Rng64::seed_from_u64(seed);
    let data: Vec<f32> = (0..len)
        .map(|i| match i % 7 {
            0 => 0.0,
            3 => -0.0,
            _ => rng.normal(),
        })
        .collect();
    Tensor::new(shape, data)
}

fn assert_bits_eq(got: &Tensor, want: &Tensor, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what} shape");
    for (i, (x, y)) in got.data().iter().zip(want.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what} element {i}: implicit {x} vs materialized {y}"
        );
    }
}

/// Materialized-im2col conv2d forward: the old implementation.
fn conv_ref_forward(input: &Tensor, weight: &Tensor, bias: &Tensor, s: usize, p: usize) -> Tensor {
    let (b, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (o, kh, kw) = (weight.shape()[0], weight.shape()[2], weight.shape()[3]);
    let oh = conv_out_dim(h, kh, s, p);
    let ow = conv_out_dim(w, kw, s, p);
    let (ckk, ohw) = (c * kh * kw, oh * ow);
    let mut out = vec![0.0f32; b * o * ohw];
    let mut cols = vec![0.0f32; ckk * ohw];
    for bi in 0..b {
        let image = &input.data()[bi * c * h * w..(bi + 1) * c * h * w];
        im2col(image, c, h, w, kh, kw, s, p, oh, ow, &mut cols);
        let out_sample = &mut out[bi * o * ohw..(bi + 1) * o * ohw];
        matmul_into(weight.data(), &cols, out_sample, o, ckk, ohw);
        if !bias.is_empty() {
            for (oc, chunk) in out_sample.chunks_mut(ohw).enumerate() {
                let bv = bias.data()[oc];
                for v in chunk {
                    *v += bv;
                }
            }
        }
    }
    Tensor::new(&[b, o, oh, ow], out)
}

/// Materialized conv2d backward: im2col, `matmul_nt` for the weight
/// gradient, materialized `w^T` GEMM + col2im for the input gradient.
fn conv_ref_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    s: usize,
    p: usize,
) -> (Tensor, Tensor, Tensor) {
    let (b, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (o, kh, kw) = (weight.shape()[0], weight.shape()[2], weight.shape()[3]);
    let (oh, ow) = (grad_out.shape()[2], grad_out.shape()[3]);
    let (ckk, ohw) = (c * kh * kw, oh * ow);
    let mut grad_input = vec![0.0f32; input.len()];
    let mut gw = Tensor::zeros(weight.shape());
    let mut gb = Tensor::zeros(&[o]);
    let w_t = weight.reshape(&[o, ckk]).t(); // (ckk, o)
    let mut cols = vec![0.0f32; ckk * ohw];
    let mut gcols = vec![0.0f32; ckk * ohw];
    for bi in 0..b {
        let image = &input.data()[bi * c * h * w..(bi + 1) * c * h * w];
        let g = &grad_out.data()[bi * o * ohw..(bi + 1) * o * ohw];
        im2col(image, c, h, w, kh, kw, s, p, oh, ow, &mut cols);
        matmul_nt_acc_into(g, &cols, gw.data_mut(), o, ohw, ckk);
        matmul_into(w_t.data(), g, &mut gcols, ckk, o, ohw);
        let gi = &mut grad_input[bi * c * h * w..(bi + 1) * c * h * w];
        col2im(&gcols, c, h, w, kh, kw, s, p, oh, ow, gi);
        for oc in 0..o {
            gb.data_mut()[oc] += g[oc * ohw..(oc + 1) * ohw].iter().sum::<f32>();
        }
    }
    (Tensor::new(input.shape(), grad_input), gw, gb)
}

/// Materialized conv-transpose forward: `w2^T x` GEMM, then col2im.
fn conv_t_ref_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    s: usize,
    p: usize,
) -> Tensor {
    let (b, cin, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (cout, kh, kw) = (weight.shape()[1], weight.shape()[2], weight.shape()[3]);
    let oh = conv_transpose_out_dim(h, kh, s, p);
    let ow = conv_transpose_out_dim(w, kw, s, p);
    let (ckk, hw) = (cout * kh * kw, h * w);
    let w2_t = weight.reshape(&[cin, ckk]).t(); // (ckk, cin)
    let mut out = vec![0.0f32; b * cout * oh * ow];
    let mut cols = vec![0.0f32; ckk * hw];
    for bi in 0..b {
        let x = &input.data()[bi * cin * hw..(bi + 1) * cin * hw];
        matmul_into(w2_t.data(), x, &mut cols, ckk, cin, hw);
        let out_sample = &mut out[bi * cout * oh * ow..(bi + 1) * cout * oh * ow];
        col2im(&cols, cout, oh, ow, kh, kw, s, p, h, w, out_sample);
        if !bias.is_empty() {
            for (oc, chunk) in out_sample.chunks_mut(oh * ow).enumerate() {
                let bv = bias.data()[oc];
                for v in chunk {
                    *v += bv;
                }
            }
        }
    }
    Tensor::new(&[b, cout, oh, ow], out)
}

/// Materialized conv-transpose backward: im2col over the adjoint geometry,
/// then two GEMMs.
fn conv_t_ref_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    s: usize,
    p: usize,
) -> (Tensor, Tensor, Tensor) {
    let (b, cin, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (cout, kh, kw) = (weight.shape()[1], weight.shape()[2], weight.shape()[3]);
    let (oh, ow) = (grad_out.shape()[2], grad_out.shape()[3]);
    let (ckk, hw) = (cout * kh * kw, h * w);
    let mut grad_input = vec![0.0f32; input.len()];
    let mut gw = Tensor::zeros(weight.shape());
    let mut gb = Tensor::zeros(&[cout]);
    let mut gcols = vec![0.0f32; ckk * hw];
    for bi in 0..b {
        let g = &grad_out.data()[bi * cout * oh * ow..(bi + 1) * cout * oh * ow];
        let x = &input.data()[bi * cin * hw..(bi + 1) * cin * hw];
        im2col(g, cout, oh, ow, kh, kw, s, p, h, w, &mut gcols);
        let gi = &mut grad_input[bi * cin * hw..(bi + 1) * cin * hw];
        matmul_into(weight.data(), &gcols, gi, cin, ckk, hw);
        matmul_nt_acc_into(x, &gcols, gw.data_mut(), cin, hw, ckk);
        for oc in 0..cout {
            gb.data_mut()[oc] += g[oc * oh * ow..(oc + 1) * oh * ow].iter().sum::<f32>();
        }
    }
    (Tensor::new(input.shape(), grad_input), gw, gb)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// conv2d forward + backward, implicit vs materialized, bitwise.
    #[test]
    fn conv2d_implicit_matches_materialized_bitwise(
        b in 1usize..3,
        c in 1usize..4,
        o in 1usize..4,
        h in 1usize..8,
        w in 1usize..8,
        kh in 1usize..4,
        kw in 1usize..4,
        s in 1usize..3,
        p in 0usize..3,
        seed in 0u64..1024,
    ) {
        // Clamp the kernel so the padded input always covers it.
        let kh = kh.min(h + 2 * p);
        let kw = kw.min(w + 2 * p);
        let x = filled(&[b, c, h, w], seed);
        let wt = filled(&[o, c, kh, kw], seed ^ 0x11);
        let bias = filled(&[o], seed ^ 0x22);

        let got = conv2d_forward(&x, &wt, &bias, s, p);
        let want = conv_ref_forward(&x, &wt, &bias, s, p);
        assert_bits_eq(&got, &want, "conv2d forward");

        let g = filled(got.shape(), seed ^ 0x33);
        let (gx, gw, gb) = conv2d_backward(&x, &wt, &g, s, p);
        let (gx_ref, gw_ref, gb_ref) = conv_ref_backward(&x, &wt, &g, s, p);
        assert_bits_eq(&gx, &gx_ref, "conv2d grad_input");
        assert_bits_eq(&gw, &gw_ref, "conv2d grad_weight");
        assert_bits_eq(&gb, &gb_ref, "conv2d grad_bias");
    }

    /// conv_transpose2d forward + backward, implicit (fused col2im) vs
    /// materialized, bitwise.
    #[test]
    fn conv_t_implicit_matches_materialized_bitwise(
        b in 1usize..3,
        cin in 1usize..4,
        cout in 1usize..4,
        h in 1usize..7,
        w in 1usize..7,
        kh in 1usize..5,
        kw in 1usize..5,
        s in 1usize..3,
        p in 0usize..3,
        seed in 0u64..1024,
    ) {
        // Clamp the padding so the transposed output stays >= 1 on each axis.
        let p = p
            .min(((h - 1) * s + kh - 1) / 2)
            .min(((w - 1) * s + kw - 1) / 2);
        let x = filled(&[b, cin, h, w], seed);
        let wt = filled(&[cin, cout, kh, kw], seed ^ 0x44);
        let bias = filled(&[cout], seed ^ 0x55);

        let got = conv_transpose2d_forward(&x, &wt, &bias, s, p);
        let want = conv_t_ref_forward(&x, &wt, &bias, s, p);
        assert_bits_eq(&got, &want, "conv_t forward");

        let g = filled(got.shape(), seed ^ 0x66);
        let (gx, gw, gb) = conv_transpose2d_backward(&x, &wt, &g, s, p);
        let (gx_ref, gw_ref, gb_ref) = conv_t_ref_backward(&x, &wt, &g, s, p);
        assert_bits_eq(&gx, &gx_ref, "conv_t grad_input");
        assert_bits_eq(&gw, &gw_ref, "conv_t grad_weight");
        assert_bits_eq(&gb, &gb_ref, "conv_t grad_bias");
    }
}

/// A fixed larger odd-shape case crossing MC/KC/NC panel edges inside the
/// per-sample GEMMs, plus thread-count invariance of the whole conv path
/// (the per-sample batch split and the shared-panel GEMM schedule must
/// both be bitwise thread-count independent).
#[test]
fn conv_paths_bitwise_identical_across_thread_counts() {
    use md_tensor::parallel::scoped_max_threads;
    let (b, c, o, h, w, kh, s, p) = (3, 5, 7, 13, 11, 3, 2, 1);
    let x = filled(&[b, c, h, w], 7);
    let wt = filled(&[o, c, kh, kh], 8);
    let bias = filled(&[o], 9);
    let run = |threads: usize| {
        let _g = scoped_max_threads(threads);
        let out = conv2d_forward(&x, &wt, &bias, s, p);
        let gout = filled(out.shape(), 10);
        let (gx, gw, gb) = conv2d_backward(&x, &wt, &gout, s, p);
        (out, gx, gw, gb)
    };
    let seq = run(1);
    for threads in [2, 3, 8] {
        let par = run(threads);
        for (which, (a, b)) in [
            (&seq.0, &par.0),
            (&seq.1, &par.1),
            (&seq.2, &par.2),
            (&seq.3, &par.3),
        ]
        .iter()
        .enumerate()
        {
            for (i, (x0, x1)) in a.data().iter().zip(b.data()).enumerate() {
                assert_eq!(
                    x0.to_bits(),
                    x1.to_bits(),
                    "output {which} element {i} differs at {threads} threads"
                );
            }
        }
    }
}
