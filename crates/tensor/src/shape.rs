//! Shapes, strides and broadcasting rules.
//!
//! Tensors are row-major ("C order"): the last dimension is contiguous.
//! Broadcasting follows the NumPy convention: shapes are right-aligned, and
//! each dimension pair must be equal or one of them must be `1`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The dimensions of a tensor, e.g. `[batch, channels, height, width]`.
///
/// A scalar is represented by the empty shape `[]` (one element).
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Creates a shape from a dimension slice.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Number of dimensions (rank).
    #[inline]
    pub fn ndim(&self) -> usize {
        self.0.len()
    }

    /// Dimension sizes as a slice.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Total number of elements (product of dimensions; 1 for a scalar).
    #[inline]
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides, in elements.
    ///
    /// `strides[i]` is the linear-index step when dimension `i` advances by 1.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0usize; self.0.len()];
        let mut acc = 1usize;
        for i in (0..self.0.len()).rev() {
            strides[i] = acc;
            acc *= self.0[i];
        }
        strides
    }

    /// Converts a multi-dimensional index into a linear offset.
    ///
    /// # Panics
    /// Panics if `idx` has the wrong rank or an index is out of bounds.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.0.len(), "index rank mismatch");
        let mut off = 0usize;
        let mut acc = 1usize;
        for i in (0..self.0.len()).rev() {
            assert!(
                idx[i] < self.0[i],
                "index {} out of bounds for dim {i} of size {}",
                idx[i],
                self.0[i]
            );
            off += idx[i] * acc;
            acc *= self.0[i];
        }
        off
    }

    /// Computes the broadcast result shape of `a` and `b`, or `None` if the
    /// shapes are incompatible.
    ///
    /// Follows the NumPy rule: right-align, pad the shorter shape with 1s,
    /// then each pair must match or contain a 1.
    pub fn broadcast(a: &Shape, b: &Shape) -> Option<Shape> {
        let n = a.ndim().max(b.ndim());
        let mut out = vec![0usize; n];
        for (i, slot) in out.iter_mut().enumerate() {
            let da = if i < n - a.ndim() {
                1
            } else {
                a.0[i - (n - a.ndim())]
            };
            let db = if i < n - b.ndim() {
                1
            } else {
                b.0[i - (n - b.ndim())]
            };
            if da == db || da == 1 || db == 1 {
                *slot = da.max(db);
            } else {
                return None;
            }
        }
        Some(Shape(out))
    }

    /// Returns true if this shape can broadcast *to* `target` (i.e. this
    /// tensor can be expanded, without copying semantics, to `target`).
    pub fn broadcasts_to(&self, target: &Shape) -> bool {
        if self.ndim() > target.ndim() {
            return false;
        }
        let pad = target.ndim() - self.ndim();
        for i in 0..self.ndim() {
            let d = self.0[i];
            if d != target.0[i + pad] && d != 1 {
                return false;
            }
        }
        true
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_of_scalar_is_one() {
        assert_eq!(Shape::new(&[]).numel(), 1);
    }

    #[test]
    fn numel_products() {
        assert_eq!(Shape::new(&[2, 3, 4]).numel(), 24);
        assert_eq!(Shape::new(&[7]).numel(), 7);
        assert_eq!(Shape::new(&[5, 0, 2]).numel(), 0);
    }

    #[test]
    fn row_major_strides() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[6]).strides(), vec![1]);
        assert!(Shape::new(&[]).strides().is_empty());
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 23);
        assert_eq!(s.offset(&[1, 0, 2]), 14);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_rejects_out_of_bounds() {
        Shape::new(&[2, 2]).offset(&[2, 0]);
    }

    #[test]
    fn broadcast_equal_shapes() {
        let a = Shape::new(&[2, 3]);
        assert_eq!(Shape::broadcast(&a, &a), Some(a.clone()));
    }

    #[test]
    fn broadcast_scalar_with_anything() {
        let a = Shape::new(&[]);
        let b = Shape::new(&[4, 5]);
        assert_eq!(Shape::broadcast(&a, &b), Some(b.clone()));
        assert_eq!(Shape::broadcast(&b, &a), Some(b));
    }

    #[test]
    fn broadcast_pads_left() {
        let a = Shape::new(&[3]);
        let b = Shape::new(&[2, 3]);
        assert_eq!(Shape::broadcast(&a, &b), Some(Shape::new(&[2, 3])));
    }

    #[test]
    fn broadcast_ones_expand() {
        let a = Shape::new(&[2, 1, 4]);
        let b = Shape::new(&[1, 3, 1]);
        assert_eq!(Shape::broadcast(&a, &b), Some(Shape::new(&[2, 3, 4])));
    }

    #[test]
    fn broadcast_incompatible() {
        let a = Shape::new(&[2, 3]);
        let b = Shape::new(&[4, 3]);
        assert_eq!(Shape::broadcast(&a, &b), None);
    }

    #[test]
    fn broadcasts_to_checks_direction() {
        assert!(Shape::new(&[1, 3]).broadcasts_to(&Shape::new(&[5, 3])));
        assert!(Shape::new(&[3]).broadcasts_to(&Shape::new(&[5, 3])));
        assert!(!Shape::new(&[5, 3]).broadcasts_to(&Shape::new(&[3])));
        assert!(!Shape::new(&[2, 3]).broadcasts_to(&Shape::new(&[5, 3])));
    }
}
