//! The dense, contiguous, row-major f32 tensor.

use crate::rng::Rng64;
use crate::shape::Shape;
use crate::workspace;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense n-dimensional array of `f32` stored contiguously in row-major
/// order.
///
/// All operations allocate fresh output tensors unless suffixed `_inplace`
/// or `_assign`. This keeps aliasing trivial and makes the library easy to
/// reason about in the multi-threaded training code.
///
/// Backing buffers are drawn from and returned to the process-wide
/// recycling pool in [`crate::workspace`]: dropping a tensor shelves its
/// `Vec<f32>` for reuse and cloning draws from the shelf, so steady-state
/// training loops allocate nothing. This is invisible at the API level —
/// only the `workspace::stats()` counters can tell.
#[derive(PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: workspace::take_copy(&self.data),
        }
    }

    /// Reuses `self`'s existing buffer when cloning into it (the layer
    /// input-caching pattern `cached = Some(x.clone())` rewritten as
    /// `cached.clone_from(x)` touches no allocator at all once warm).
    fn clone_from(&mut self, source: &Self) {
        self.shape = source.shape.clone();
        self.data.clear();
        self.data.extend_from_slice(&source.data);
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        workspace::recycle(std::mem::take(&mut self.data));
    }
}

impl Tensor {
    // ---------------------------------------------------------------- ctors

    /// Creates a tensor from a shape and backing data.
    ///
    /// # Panics
    /// Panics if `data.len() != shape.numel()`.
    pub fn new(shape: &[usize], data: Vec<f32>) -> Self {
        let shape = Shape::new(shape);
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.numel()
        );
        Tensor { shape, data }
    }

    /// A tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// A tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let shape = Shape::new(shape);
        let n = shape.numel();
        Tensor {
            shape,
            data: workspace::take_filled(n, value),
        }
    }

    /// A rank-0 (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::new(&[]),
            data: vec![value],
        }
    }

    /// Standard-normal samples (Box–Muller), seeded via the supplied RNG.
    pub fn randn(shape: &[usize], rng: &mut Rng64) -> Self {
        let shape = Shape::new(shape);
        let n = shape.numel();
        let mut data = workspace::take_raw(n);
        for _ in 0..n {
            data.push(rng.normal());
        }
        Tensor { shape, data }
    }

    /// Uniform samples in `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut Rng64) -> Self {
        let shape = Shape::new(shape);
        let n = shape.numel();
        let mut data = workspace::take_raw(n);
        for _ in 0..n {
            data.push(lo + (hi - lo) * rng.uniform());
        }
        Tensor { shape, data }
    }

    /// `[0, 1, 2, ..., n-1]` as a 1-D tensor.
    pub fn arange(n: usize) -> Self {
        let mut data = workspace::take_raw(n);
        data.extend((0..n).map(|i| i as f32));
        Tensor::new(&[n], data)
    }

    // ------------------------------------------------------------ accessors

    /// Dimension sizes.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The [`Shape`] object.
    #[inline]
    pub fn shape_obj(&self) -> &Shape {
        &self.shape
    }

    /// Rank (number of dimensions).
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.ndim()
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff the tensor has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing data (row-major).
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data (row-major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its backing vector.
    pub fn into_data(mut self) -> Vec<f32> {
        // `Drop` then sees an empty Vec and shelves nothing.
        std::mem::take(&mut self.data)
    }

    /// Element at a multi-dimensional index.
    #[inline]
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.offset(idx)]
    }

    /// Mutable element at a multi-dimensional index.
    #[inline]
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let off = self.shape.offset(idx);
        &mut self.data[off]
    }

    /// The single value of a rank-0 or single-element tensor.
    ///
    /// # Panics
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.data.len(),
            1,
            "item() on tensor with {} elements",
            self.data.len()
        );
        self.data[0]
    }

    // -------------------------------------------------------------- reshape

    /// Returns a tensor with the same data and a new shape.
    ///
    /// One dimension may be `usize::MAX` ("infer"), mirroring NumPy's `-1`.
    ///
    /// # Panics
    /// Panics if the element counts do not match.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        self.clone().into_reshape(dims)
    }

    /// In-place (move) variant of [`Tensor::reshape`].
    pub fn into_reshape(mut self, dims: &[usize]) -> Tensor {
        let mut dims = dims.to_vec();
        let infer = dims.iter().position(|&d| d == usize::MAX);
        if let Some(i) = infer {
            let known: usize = dims.iter().filter(|&&d| d != usize::MAX).product();
            assert!(
                known > 0 && self.data.len().is_multiple_of(known),
                "cannot infer dimension"
            );
            dims[i] = self.data.len() / known;
        }
        let shape = Shape::new(&dims);
        assert_eq!(
            shape.numel(),
            self.data.len(),
            "reshape to {shape} changes element count"
        );
        self.shape = shape;
        self
    }

    /// Flattens to 1-D.
    pub fn flatten(&self) -> Tensor {
        self.reshape(&[self.len()])
    }

    // ----------------------------------------------------------- row slices

    /// Views row `i` of a 2-D tensor as a slice.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.ndim(), 2, "row() requires a 2-D tensor");
        let cols = self.shape()[1];
        &self.data[i * cols..(i + 1) * cols]
    }

    /// Copies the `i`-th slice along axis 0 (e.g. one sample of a batch).
    pub fn index_axis0(&self, i: usize) -> Tensor {
        assert!(self.ndim() >= 1, "index_axis0 requires rank >= 1");
        let n0 = self.shape()[0];
        assert!(i < n0, "index {i} out of bounds for axis 0 of size {n0}");
        let stride: usize = self.shape()[1..].iter().product();
        let data = workspace::take_copy(&self.data[i * stride..(i + 1) * stride]);
        Tensor::new(&self.shape()[1..], data)
    }

    /// Stacks tensors of identical shape along a new leading axis.
    pub fn stack(items: &[Tensor]) -> Tensor {
        assert!(!items.is_empty(), "stack of zero tensors");
        let inner = items[0].shape().to_vec();
        let mut data = workspace::take_raw(items.len() * items[0].len());
        for t in items {
            assert_eq!(t.shape(), &inner[..], "stack shape mismatch");
            data.extend_from_slice(t.data());
        }
        let mut dims = vec![items.len()];
        dims.extend_from_slice(&inner);
        Tensor::new(&dims, data)
    }

    /// Concatenates tensors along axis 0; trailing dims must match.
    pub fn concat0(items: &[Tensor]) -> Tensor {
        assert!(!items.is_empty(), "concat of zero tensors");
        let inner = items[0].shape()[1..].to_vec();
        let mut total0 = 0usize;
        let mut data = workspace::take_raw(items.iter().map(Tensor::len).sum());
        for t in items {
            assert_eq!(
                &t.shape()[1..],
                &inner[..],
                "concat trailing shape mismatch"
            );
            total0 += t.shape()[0];
            data.extend_from_slice(t.data());
        }
        let mut dims = vec![total0];
        dims.extend_from_slice(&inner);
        Tensor::new(&dims, data)
    }

    /// Gathers rows (axis-0 slices) at the given indices into a new tensor.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        assert!(self.ndim() >= 1);
        let stride: usize = self.shape()[1..].iter().product();
        let mut data = workspace::take_raw(indices.len() * stride);
        for &i in indices {
            assert!(i < self.shape()[0], "gather index {i} out of bounds");
            data.extend_from_slice(&self.data[i * stride..(i + 1) * stride]);
        }
        let mut dims = vec![indices.len()];
        dims.extend_from_slice(&self.shape()[1..]);
        Tensor::new(&dims, data)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.len() <= 16 {
            write!(f, "{:?}", self.data)
        } else {
            write!(f, "[{:?}, ... {} elements]", &self.data[..8], self.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_checks_length() {
        let t = Tensor::new(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.len(), 4);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn new_rejects_bad_length() {
        Tensor::new(&[2, 2], vec![1.0]);
    }

    #[test]
    fn zeros_ones_full() {
        assert!(Tensor::zeros(&[3]).data().iter().all(|&x| x == 0.0));
        assert!(Tensor::ones(&[3]).data().iter().all(|&x| x == 1.0));
        assert!(Tensor::full(&[3], 2.5).data().iter().all(|&x| x == 2.5));
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    #[should_panic(expected = "item()")]
    fn item_rejects_multi_element() {
        Tensor::zeros(&[2]).item();
    }

    #[test]
    fn randn_is_seeded_and_deterministic() {
        let mut r1 = Rng64::seed_from_u64(7);
        let mut r2 = Rng64::seed_from_u64(7);
        let a = Tensor::randn(&[32], &mut r1);
        let b = Tensor::randn(&[32], &mut r2);
        assert_eq!(a.data(), b.data());
        // crude sanity: mean near 0, not all equal
        let mean: f32 = a.data().iter().sum::<f32>() / 32.0;
        assert!(mean.abs() < 1.0);
        assert!(a.data().iter().any(|&x| x != a.data()[0]));
    }

    #[test]
    fn rand_uniform_range() {
        let mut rng = Rng64::seed_from_u64(3);
        let t = Tensor::rand_uniform(&[256], -2.0, 5.0, &mut rng);
        assert!(t.data().iter().all(|&x| (-2.0..5.0).contains(&x)));
    }

    #[test]
    fn reshape_roundtrip_and_infer() {
        let t = Tensor::arange(12);
        let m = t.reshape(&[3, 4]);
        assert_eq!(m.at(&[1, 2]), 6.0);
        let inferred = m.reshape(&[2, usize::MAX]);
        assert_eq!(inferred.shape(), &[2, 6]);
    }

    #[test]
    #[should_panic(expected = "changes element count")]
    fn reshape_rejects_bad_count() {
        Tensor::arange(5).reshape(&[2, 3]);
    }

    #[test]
    fn index_axis0_extracts_sample() {
        let t = Tensor::arange(12).into_reshape(&[3, 2, 2]);
        let s = t.index_axis0(1);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.data(), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn stack_and_concat() {
        let a = Tensor::arange(4).into_reshape(&[2, 2]);
        let b = Tensor::full(&[2, 2], 9.0);
        let s = Tensor::stack(&[a.clone(), b.clone()]);
        assert_eq!(s.shape(), &[2, 2, 2]);
        let c = Tensor::concat0(&[a, b]);
        assert_eq!(c.shape(), &[4, 2]);
        assert_eq!(c.row(3), &[9.0, 9.0]);
    }

    #[test]
    fn gather_rows_selects() {
        let t = Tensor::arange(6).into_reshape(&[3, 2]);
        let g = t.gather_rows(&[2, 0, 2]);
        assert_eq!(g.shape(), &[3, 2]);
        assert_eq!(g.data(), &[4.0, 5.0, 0.0, 1.0, 4.0, 5.0]);
    }

    #[test]
    fn row_views_2d() {
        let t = Tensor::arange(6).into_reshape(&[2, 3]);
        assert_eq!(t.row(1), &[3.0, 4.0, 5.0]);
    }
}
