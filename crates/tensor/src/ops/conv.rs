//! 2-D convolution and transposed convolution as **implicit GEMM**, with
//! analytic gradients.
//!
//! Layout conventions (all row-major):
//! * activations: `(B, C, H, W)`
//! * conv2d weights: `(O, C, KH, KW)` — `O` output channels
//! * conv-transpose2d weights: `(C_in, C_out, KH, KW)` (PyTorch convention)
//!
//! Every path is an im2col-style GEMM, but the `(C*KH*KW, OH*OW)` column
//! matrix is **never materialized**: the [`Im2colRhs`] / [`Im2colTRhs`]
//! packers implement [`gemm::PackRhs`] and extract convolution patches on
//! the fly straight into the GEMM's packed sliver format, and the
//! transposed/grad-input paths fuse `col2im` into the GEMM epilogue via
//! [`gemm::gemm_scatter`] (each finished row-block tile is scattered into
//! the image and discarded). The reference [`im2col`] / [`col2im`]
//! functions remain as the spec: every implicit path is bitwise identical
//! to materialize-then-multiply (the packers read the exact same values
//! and the GEMM's per-element `k`-order is unchanged; the tile scatter
//! accumulates in the same ascending `(row, position)` order as
//! [`col2im`]).
//!
//! The transposed convolution is implemented as the exact adjoint of the
//! convolution: its forward pass is a `col2im` scatter, and its backward
//! pass reuses the `im2col` geometry. This guarantees that `conv_t`
//! forward is literally the gradient of `conv` with respect to its input,
//! a property the unit tests check.

use crate::ops::gemm::{self, Lhs, PackRhs, SliceRhs, NR};
use crate::parallel;
use crate::tensor::Tensor;
use crate::workspace;

/// Spatial output size of a convolution along one axis.
///
/// # Panics
/// Panics if the configuration yields a non-positive size.
pub fn conv_out_dim(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    let padded = input + 2 * pad;
    assert!(
        padded >= kernel,
        "kernel {kernel} larger than padded input {padded}"
    );
    (padded - kernel) / stride + 1
}

/// Spatial output size of a transposed convolution along one axis.
///
/// # Panics
/// Panics if `input == 0` (the `(input - 1) * stride` term would otherwise
/// underflow and silently wrap in release builds), if `stride == 0`, or if
/// the padding exceeds the produced size.
pub fn conv_transpose_out_dim(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    assert!(
        input > 0,
        "conv_transpose input dim must be positive (got 0)"
    );
    let full = (input - 1) * stride + kernel;
    assert!(
        full >= 2 * pad,
        "padding {pad} too large for transposed conv output {full}"
    );
    full - 2 * pad
}

/// Unfolds one `(C, H, W)` image into a `(C*KH*KW, OH*OW)` column matrix.
///
/// `cols` must be zero-initialised or will be fully overwritten (including
/// the zero-padding positions).
#[allow(clippy::too_many_arguments)]
pub fn im2col(
    image: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    oh: usize,
    ow: usize,
    cols: &mut [f32],
) {
    assert_eq!(image.len(), c * h * w, "im2col image size mismatch");
    assert_eq!(
        cols.len(),
        c * kh * kw * oh * ow,
        "im2col cols size mismatch"
    );
    let ohw = oh * ow;
    for ci in 0..c {
        let img_base = ci * h * w;
        for ki in 0..kh {
            for kj in 0..kw {
                let row = ((ci * kh + ki) * kw + kj) * ohw;
                for oy in 0..oh {
                    let iy = (oy * stride + ki) as isize - pad as isize;
                    let col_base = row + oy * ow;
                    if iy < 0 || iy >= h as isize {
                        cols[col_base..col_base + ow].fill(0.0);
                        continue;
                    }
                    let img_row = img_base + iy as usize * w;
                    for ox in 0..ow {
                        let ix = (ox * stride + kj) as isize - pad as isize;
                        cols[col_base + ox] = if ix < 0 || ix >= w as isize {
                            0.0
                        } else {
                            image[img_row + ix as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Adjoint of [`im2col`]: scatters a `(C*KH*KW, OH*OW)` column matrix back
/// into a `(C, H, W)` image, *accumulating* overlapping contributions.
///
/// The caller must zero `image` first if a pure scatter is wanted.
#[allow(clippy::too_many_arguments)]
pub fn col2im(
    cols: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    oh: usize,
    ow: usize,
    image: &mut [f32],
) {
    assert_eq!(image.len(), c * h * w, "col2im image size mismatch");
    assert_eq!(
        cols.len(),
        c * kh * kw * oh * ow,
        "col2im cols size mismatch"
    );
    let ohw = oh * ow;
    for ci in 0..c {
        let img_base = ci * h * w;
        for ki in 0..kh {
            for kj in 0..kw {
                let row = ((ci * kh + ki) * kw + kj) * ohw;
                for oy in 0..oh {
                    let iy = (oy * stride + ki) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let img_row = img_base + iy as usize * w;
                    let col_base = row + oy * ow;
                    for ox in 0..ow {
                        let ix = (ox * stride + kj) as isize - pad as isize;
                        if ix >= 0 && ix < w as isize {
                            image[img_row + ix as usize] += cols[col_base + ox];
                        }
                    }
                }
            }
        }
    }
}

/// One sample's convolution geometry: the `(c, h, w)` image, the kernel,
/// and the `(oh, ow)` output grid the column matrix ranges over. Shared by
/// the implicit packers and the fused scatter so their index math cannot
/// drift apart.
#[derive(Clone, Copy)]
struct ConvGeom {
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    oh: usize,
    ow: usize,
}

impl ConvGeom {
    /// Rows of the im2col column matrix: `c * kh * kw`.
    fn ckk(&self) -> usize {
        self.c * self.kh * self.kw
    }

    /// Columns of the im2col column matrix: `oh * ow`.
    fn ohw(&self) -> usize {
        self.oh * self.ow
    }

    /// Splits a column-matrix row index into `(ci, ki, kj, image base)`.
    #[inline]
    fn split_row(&self, row: usize) -> (usize, usize, usize) {
        let kj = row % self.kw;
        let ki = (row / self.kw) % self.kh;
        let ci = row / (self.kw * self.kh);
        (ci, ki, kj)
    }
}

/// Implicit im2col right-hand operand: the virtual `(c*kh*kw, oh*ow)`
/// column matrix of one image, packed patch-by-patch on the fly. Reads the
/// exact values [`im2col`] would have written
/// (`cols[row][oy*ow + ox] = image[ci][oy*stride+ki-pad][ox*stride+kj-pad]`,
/// zero outside the image), so a GEMM over this operand is bitwise
/// identical to materialize-then-multiply.
struct Im2colRhs<'a> {
    image: &'a [f32],
    g: ConvGeom,
}

impl PackRhs for Im2colRhs<'_> {
    fn pack_panel(&self, bp: &mut [f32], kb: usize, kc: usize, jb: usize, nc: usize) {
        let ConvGeom {
            h,
            w,
            stride,
            pad,
            ow,
            ..
        } = self.g;
        let n = self.g.ohw();
        let nslivers = nc.div_ceil(NR);
        for s in 0..nslivers {
            let j0 = jb + s * NR;
            let jw = NR.min(n - j0);
            let sliver = &mut bp[s * kc * NR..(s + 1) * kc * NR];
            for p in 0..kc {
                let (ci, ki, kj) = self.g.split_row(kb + p);
                let img_base = ci * h * w;
                let dst = &mut sliver[p * NR..(p + 1) * NR];
                dst[jw..].fill(0.0);
                // Walk the jw output positions one oy-row at a time so the
                // vertical bounds check hoists out of the inner loop and
                // stride-1 interior segments become contiguous copies —
                // same traffic as `im2col`, minus the materialized matrix.
                let mut jj = 0;
                let mut oy = j0 / ow;
                let mut ox = j0 - oy * ow;
                while jj < jw {
                    let seg = (ow - ox).min(jw - jj);
                    let iy = (oy * stride + ki) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        dst[jj..jj + seg].fill(0.0);
                    } else {
                        let img_row = img_base + iy as usize * w;
                        pack_row_taps(
                            &mut dst[jj..jj + seg],
                            &self.image[img_row..img_row + w],
                            ox,
                            stride,
                            kj as isize - pad as isize,
                        );
                    }
                    jj += seg;
                    ox = 0;
                    oy += 1;
                }
            }
        }
    }
}

/// Packs `dst.len()` horizontal kernel taps `ix = (ox + i) * stride + off`
/// from one in-bounds image row, writing zero wherever `ix` falls outside
/// the row. At stride 1 the valid window is a single contiguous
/// `copy_from_slice`; larger strides fall back to a per-tap gather with
/// only the horizontal check left.
fn pack_row_taps(dst: &mut [f32], row: &[f32], ox: usize, stride: usize, off: isize) {
    let seg = dst.len() as isize;
    let w = row.len() as isize;
    if stride == 1 {
        let base = ox as isize + off; // tap i reads row[base + i]
        let lo = (-base).clamp(0, seg) as usize;
        let hi = (w - base).clamp(0, seg) as usize;
        dst[..lo].fill(0.0);
        if hi > lo {
            let start = (base + lo as isize) as usize;
            dst[lo..hi].copy_from_slice(&row[start..start + (hi - lo)]);
        }
        dst[hi.max(lo)..].fill(0.0);
    } else {
        for (i, d) in dst.iter_mut().enumerate() {
            let ix = ((ox + i) * stride) as isize + off;
            *d = if ix < 0 || ix >= w {
                0.0
            } else {
                row[ix as usize]
            };
        }
    }
}

/// Transposed implicit im2col operand: the virtual `(oh*ow, c*kh*kw)`
/// matrix `cols^T`, for `grad_weight += g · cols^T` products. Packing
/// element `[p][j]` reads `cols[j][p]` — the same image loads as
/// [`Im2colRhs`], transposed, so the accumulated gradients stay bitwise
/// equal to the materialized path.
struct Im2colTRhs<'a> {
    image: &'a [f32],
    g: ConvGeom,
}

impl PackRhs for Im2colTRhs<'_> {
    fn pack_panel(&self, bp: &mut [f32], kb: usize, kc: usize, jb: usize, nc: usize) {
        let ConvGeom {
            h,
            w,
            stride,
            pad,
            ow,
            ..
        } = self.g;
        let n = self.g.ckk();
        let nslivers = nc.div_ceil(NR);
        for s in 0..nslivers {
            let j0 = jb + s * NR;
            let jw = NR.min(n - j0);
            let sliver = &mut bp[s * kc * NR..(s + 1) * kc * NR];
            for jj in 0..NR {
                if jj >= jw {
                    for p in 0..kc {
                        sliver[p * NR + jj] = 0.0;
                    }
                    continue;
                }
                let (ci, ki, kj) = self.g.split_row(j0 + jj);
                let img_base = ci * h * w;
                let off = kj as isize - pad as isize;
                // `k` runs over output positions here; walk them one
                // oy-row segment at a time (vertical check hoisted), same
                // as the untransposed packer. Writes stay NR-strided.
                let mut p = 0;
                let mut oy = kb / ow;
                let mut ox = kb - oy * ow;
                while p < kc {
                    let seg = (ow - ox).min(kc - p);
                    let iy = (oy * stride + ki) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        for q in 0..seg {
                            sliver[(p + q) * NR + jj] = 0.0;
                        }
                    } else {
                        let row_base = img_base + iy as usize * w;
                        let row = &self.image[row_base..row_base + w];
                        for q in 0..seg {
                            let ix = ((ox + q) * stride) as isize + off;
                            sliver[(p + q) * NR + jj] = if ix < 0 || ix >= w as isize {
                                0.0
                            } else {
                                row[ix as usize]
                            };
                        }
                    }
                    p += seg;
                    ox = 0;
                    oy += 1;
                }
            }
        }
    }
}

/// Fused-col2im epilogue for [`gemm::gemm_scatter`]: accumulates `rows`
/// finished column-matrix rows (starting at global row `r0`) into the
/// image. Row blocks arrive in ascending order and each row scatters its
/// positions in ascending order, so the element-wise `+=` order is exactly
/// [`col2im`]'s `(row, oy, ox)` loop nest — bitwise identical to
/// materializing the whole column matrix first.
fn scatter_tile(tile: &[f32], r0: usize, rows: usize, g: &ConvGeom, image: &mut [f32]) {
    let ConvGeom {
        h,
        w,
        stride,
        pad,
        oh,
        ow,
        ..
    } = *g;
    let n = oh * ow;
    for r in 0..rows {
        let (ci, ki, kj) = g.split_row(r0 + r);
        let img_base = ci * h * w;
        let trow = r * n;
        for oy in 0..oh {
            let iy = (oy * stride + ki) as isize - pad as isize;
            if iy < 0 || iy >= h as isize {
                continue;
            }
            let img_row = img_base + iy as usize * w;
            let col_base = trow + oy * ow;
            for ox in 0..ow {
                let ix = (ox * stride + kj) as isize - pad as isize;
                if ix >= 0 && ix < w as isize {
                    image[img_row + ix as usize] += tile[col_base + ox];
                }
            }
        }
    }
}

/// Batched 2-D convolution forward pass.
///
/// * `input`: `(B, C, H, W)`
/// * `weight`: `(O, C, KH, KW)`
/// * `bias`: `(O,)` or empty tensor for no bias
///
/// Returns `(B, O, OH, OW)`.
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    stride: usize,
    pad: usize,
) -> Tensor {
    let (b, c, h, w) = dims4(input, "conv2d input");
    let wd = weight.shape();
    assert_eq!(wd.len(), 4, "conv2d weight must be 4-D");
    let (o, wc, kh, kw) = (wd[0], wd[1], wd[2], wd[3]);
    assert_eq!(c, wc, "conv2d channel mismatch: input {c} vs weight {wc}");
    let has_bias = !bias.is_empty();
    if has_bias {
        assert_eq!(bias.len(), o, "conv2d bias size mismatch");
    }
    let oh = conv_out_dim(h, kh, stride, pad);
    let ow = conv_out_dim(w, kw, stride, pad);
    let ckk = c * kh * kw;
    let ohw = oh * ow;

    let geom = ConvGeom {
        c,
        h,
        w,
        kh,
        kw,
        stride,
        pad,
        oh,
        ow,
    };
    // Implicit GEMM per sample: out (o, ohw) = weight (o, ckk) x cols
    // (ckk, ohw), with the column matrix packed on the fly — the GEMM
    // fully overwrites every sample, so the buffer can start uninitialized.
    let mut out = workspace::take_uninit(b * o * ohw);
    let in_data = input.data();
    let w_data = weight.data();
    let b_data = bias.data();
    parallel::parallel_for_chunks(&mut out, b, ckk * o * ohw, |bi, out_sample| {
        let image = &in_data[bi * c * h * w..(bi + 1) * c * h * w];
        let cols = Im2colRhs { image, g: geom };
        gemm::gemm_with(Lhs::RowMajor(w_data), &cols, out_sample, o, ckk, ohw, false);
        if has_bias {
            for (oc, chunk) in out_sample.chunks_mut(ohw).enumerate() {
                let bv = b_data[oc];
                for v in chunk {
                    *v += bv;
                }
            }
        }
    });
    Tensor::new(&[b, o, oh, ow], out)
}

/// Gradients of the batched conv2d.
///
/// Returns `(grad_input, grad_weight, grad_bias)` where `grad_bias` matches
/// `(O,)` (always produced; ignore it for bias-free layers).
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    stride: usize,
    pad: usize,
) -> (Tensor, Tensor, Tensor) {
    let mut grad_weight = Tensor::zeros(weight.shape());
    let mut grad_bias = Tensor::zeros(&[weight.shape()[0]]);
    let grad_input = conv2d_backward_acc(
        input,
        weight,
        grad_out,
        stride,
        pad,
        &mut grad_weight,
        &mut grad_bias,
    );
    (grad_input, grad_weight, grad_bias)
}

/// As [`conv2d_backward`], but **accumulates** the weight and bias gradients
/// into caller-owned tensors (`grad_weight += …`, `grad_bias += …`) and
/// returns only the freshly allocated input gradient.
///
/// This is the hot-path entry point for training layers: it avoids
/// allocating per-call gradient tensors and the extra accumulation pass,
/// and reuses thread-local scratch for the `im2col` column buffers.
pub fn conv2d_backward_acc(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    stride: usize,
    pad: usize,
    grad_weight: &mut Tensor,
    grad_bias: &mut Tensor,
) -> Tensor {
    let (b, c, h, w) = dims4(input, "conv2d input");
    let wd = weight.shape();
    let (o, _, kh, kw) = (wd[0], wd[1], wd[2], wd[3]);
    let (gb, go, oh, ow) = dims4(grad_out, "conv2d grad_out");
    assert_eq!(gb, b, "conv2d grad batch mismatch");
    assert_eq!(go, o, "conv2d grad channel mismatch");
    assert_eq!(
        grad_weight.shape(),
        weight.shape(),
        "conv2d grad_weight shape mismatch"
    );
    assert_eq!(grad_bias.len(), o, "conv2d grad_bias size mismatch");
    let ckk = c * kh * kw;
    let ohw = oh * ow;

    let geom = ConvGeom {
        c,
        h,
        w,
        kh,
        kw,
        stride,
        pad,
        oh,
        ow,
    };
    let mut grad_input = workspace::take_zeroed(input.len());
    // weight.data() is already the (o, ckk) row-major matrix; the grad-input
    // product needs its transpose, which Lhs::ColMajor reads in place — no
    // materialized `w^T` copy.
    let w2 = weight.data();
    let gw = grad_weight.data_mut();
    let gbias = grad_bias.data_mut();

    for bi in 0..b {
        let image = &input.data()[bi * c * h * w..(bi + 1) * c * h * w];
        let g = &grad_out.data()[bi * o * ohw..(bi + 1) * o * ohw];

        // grad_weight += g (o, ohw) x cols^T (ohw, ckk), with the
        // transposed column matrix packed on the fly.
        let cols_t = Im2colTRhs { image, g: geom };
        gemm::gemm_with(Lhs::RowMajor(g), &cols_t, gw, o, ohw, ckk, true);

        // grad_input = col2im(W^T (ckk, o) x g (o, ohw)), with col2im
        // fused into the GEMM epilogue — grad_cols never materializes.
        let gi = &mut grad_input[bi * c * h * w..(bi + 1) * c * h * w];
        gemm::gemm_scatter(
            Lhs::ColMajor(w2),
            &SliceRhs::new(g, false, o, ohw),
            ckk,
            o,
            ohw,
            |tile, r0, rows| scatter_tile(tile, r0, rows, &geom, gi),
        );

        for oc in 0..o {
            gbias[oc] += g[oc * ohw..(oc + 1) * ohw].iter().sum::<f32>();
        }
    }
    Tensor::new(input.shape(), grad_input)
}

/// Batched 2-D transposed convolution forward pass.
///
/// * `input`: `(B, C_in, H, W)`
/// * `weight`: `(C_in, C_out, KH, KW)`
/// * `bias`: `(C_out,)` or empty
///
/// Returns `(B, C_out, OH, OW)` with `OH = (H-1)*stride - 2*pad + KH`.
pub fn conv_transpose2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    stride: usize,
    pad: usize,
) -> Tensor {
    let (b, cin, h, w) = dims4(input, "conv_t input");
    let wd = weight.shape();
    assert_eq!(wd.len(), 4, "conv_t weight must be 4-D");
    let (wcin, cout, kh, kw) = (wd[0], wd[1], wd[2], wd[3]);
    assert_eq!(
        cin, wcin,
        "conv_t channel mismatch: input {cin} vs weight {wcin}"
    );
    let has_bias = !bias.is_empty();
    if has_bias {
        assert_eq!(bias.len(), cout, "conv_t bias size mismatch");
    }
    let oh = conv_transpose_out_dim(h, kh, stride, pad);
    let ow = conv_transpose_out_dim(w, kw, stride, pad);
    let ckk = cout * kh * kw;
    let hw = h * w;

    // The conv whose adjoint we are: image (cout, oh, ow) -> columns over
    // the input's (h, w) grid.
    let geom = ConvGeom {
        c: cout,
        h: oh,
        w: ow,
        kh,
        kw,
        stride,
        pad,
        oh: h,
        ow: w,
    };
    // weight.data() is the (cin, ckk) row-major matrix; Lhs::ColMajor reads
    // its transpose in place, so the old per-call `w2^T` copy is gone.
    let w_data = weight.data();
    let mut out = workspace::take_uninit(b * cout * oh * ow);
    let in_data = input.data();
    let b_data = bias.data();
    parallel::parallel_for_chunks(&mut out, b, cin * ckk * hw, |bi, out_sample| {
        let x = &in_data[bi * cin * hw..(bi + 1) * cin * hw];
        // cols (ckk, hw) = W2^T (ckk, cin) x x (cin, hw), scattered into
        // the output image tile by tile — the column matrix never
        // materializes.
        out_sample.fill(0.0);
        gemm::gemm_scatter(
            Lhs::ColMajor(w_data),
            &SliceRhs::new(x, false, cin, hw),
            ckk,
            cin,
            hw,
            |tile, r0, rows| scatter_tile(tile, r0, rows, &geom, out_sample),
        );
        if has_bias {
            for (oc, chunk) in out_sample.chunks_mut(oh * ow).enumerate() {
                let bv = b_data[oc];
                for v in chunk {
                    *v += bv;
                }
            }
        }
    });
    Tensor::new(&[b, cout, oh, ow], out)
}

/// Gradients of the batched transposed convolution.
///
/// Returns `(grad_input, grad_weight, grad_bias)`.
pub fn conv_transpose2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    stride: usize,
    pad: usize,
) -> (Tensor, Tensor, Tensor) {
    let mut grad_weight = Tensor::zeros(weight.shape());
    let mut grad_bias = Tensor::zeros(&[weight.shape()[1]]);
    let grad_input = conv_transpose2d_backward_acc(
        input,
        weight,
        grad_out,
        stride,
        pad,
        &mut grad_weight,
        &mut grad_bias,
    );
    (grad_input, grad_weight, grad_bias)
}

/// As [`conv_transpose2d_backward`], but **accumulates** the weight and bias
/// gradients into caller-owned tensors and returns only the input gradient.
/// The training layers use this to cut per-step allocations; column buffers
/// come from thread-local scratch and the input gradient is written in
/// place, sample by sample.
pub fn conv_transpose2d_backward_acc(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    stride: usize,
    pad: usize,
    grad_weight: &mut Tensor,
    grad_bias: &mut Tensor,
) -> Tensor {
    let (b, cin, h, w) = dims4(input, "conv_t input");
    let wd = weight.shape();
    let (_, cout, kh, kw) = (wd[0], wd[1], wd[2], wd[3]);
    let (gb, gcout, oh, ow) = dims4(grad_out, "conv_t grad_out");
    assert_eq!(gb, b, "conv_t grad batch mismatch");
    assert_eq!(gcout, cout, "conv_t grad channel mismatch");
    assert_eq!(
        grad_weight.shape(),
        weight.shape(),
        "conv_t grad_weight shape mismatch"
    );
    assert_eq!(grad_bias.len(), cout, "conv_t grad_bias size mismatch");
    let ckk = cout * kh * kw;
    let hw = h * w;

    // dL/dcols = im2col(dL/dout) over the adjoint conv geometry; packed on
    // the fly below instead of materialized.
    let geom = ConvGeom {
        c: cout,
        h: oh,
        w: ow,
        kh,
        kw,
        stride,
        pad,
        oh: h,
        ow: w,
    };
    // Every sample's slice is fully overwritten by the grad-input GEMM.
    let mut grad_input = workspace::take_uninit(input.len());
    let w2 = weight.data(); // (cin, ckk) row-major
    let gw = grad_weight.data_mut();
    let gbias = grad_bias.data_mut();

    for bi in 0..b {
        let g = &grad_out.data()[bi * cout * oh * ow..(bi + 1) * cout * oh * ow];
        let x = &input.data()[bi * cin * hw..(bi + 1) * cin * hw];

        // dL/dx = W2 (cin, ckk) x gcols (ckk, hw), straight into place.
        let gi = &mut grad_input[bi * cin * hw..(bi + 1) * cin * hw];
        let gcols = Im2colRhs { image: g, g: geom };
        gemm::gemm_with(Lhs::RowMajor(w2), &gcols, gi, cin, ckk, hw, false);

        // dL/dW2 += x (cin, hw) x gcols^T (hw, ckk), directly into the
        // caller's gradient.
        let gcols_t = Im2colTRhs { image: g, g: geom };
        gemm::gemm_with(Lhs::RowMajor(x), &gcols_t, gw, cin, hw, ckk, true);

        for oc in 0..cout {
            gbias[oc] += g[oc * oh * ow..(oc + 1) * oh * ow].iter().sum::<f32>();
        }
    }
    Tensor::new(input.shape(), grad_input)
}

fn dims4(t: &Tensor, what: &str) -> (usize, usize, usize, usize) {
    let s = t.shape();
    assert_eq!(s.len(), 4, "{what} must be 4-D, got {:?}", s);
    (s[0], s[1], s[2], s[3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;
    use crate::rng::Rng64;

    /// Direct (quadruple-loop) convolution reference.
    fn conv_ref(
        input: &Tensor,
        weight: &Tensor,
        bias: &Tensor,
        stride: usize,
        pad: usize,
    ) -> Tensor {
        let (b, c, h, w) = dims4(input, "ref input");
        let (o, _, kh, kw) = dims4(weight, "ref weight");
        let oh = conv_out_dim(h, kh, stride, pad);
        let ow = conv_out_dim(w, kw, stride, pad);
        let mut out = Tensor::zeros(&[b, o, oh, ow]);
        for bi in 0..b {
            for oc in 0..o {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = if bias.is_empty() {
                            0.0
                        } else {
                            bias.data()[oc]
                        };
                        for ci in 0..c {
                            for ki in 0..kh {
                                for kj in 0..kw {
                                    let iy = (oy * stride + ki) as isize - pad as isize;
                                    let ix = (ox * stride + kj) as isize - pad as isize;
                                    if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                        acc += input.at(&[bi, ci, iy as usize, ix as usize])
                                            * weight.at(&[oc, ci, ki, kj]);
                                    }
                                }
                            }
                        }
                        *out.at_mut(&[bi, oc, oy, ox]) = acc;
                    }
                }
            }
        }
        out
    }

    /// Direct transposed-convolution reference (scatter form).
    fn conv_t_ref(
        input: &Tensor,
        weight: &Tensor,
        bias: &Tensor,
        stride: usize,
        pad: usize,
    ) -> Tensor {
        let (b, cin, h, w) = dims4(input, "ref input");
        let (_, cout, kh, kw) = dims4(weight, "ref weight");
        let oh = conv_transpose_out_dim(h, kh, stride, pad);
        let ow = conv_transpose_out_dim(w, kw, stride, pad);
        let mut out = Tensor::zeros(&[b, cout, oh, ow]);
        for bi in 0..b {
            for ci in 0..cin {
                for y in 0..h {
                    for x in 0..w {
                        let v = input.at(&[bi, ci, y, x]);
                        for oc in 0..cout {
                            for ki in 0..kh {
                                for kj in 0..kw {
                                    let oy = (y * stride + ki) as isize - pad as isize;
                                    let ox = (x * stride + kj) as isize - pad as isize;
                                    if oy >= 0 && oy < oh as isize && ox >= 0 && ox < ow as isize {
                                        *out.at_mut(&[bi, oc, oy as usize, ox as usize]) +=
                                            v * weight.at(&[ci, oc, ki, kj]);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        if !bias.is_empty() {
            for bi in 0..b {
                for oc in 0..cout {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            *out.at_mut(&[bi, oc, oy, ox]) += bias.data()[oc];
                        }
                    }
                }
            }
        }
        out
    }

    #[test]
    fn out_dim_formulas() {
        assert_eq!(conv_out_dim(28, 3, 1, 1), 28);
        assert_eq!(conv_out_dim(28, 3, 2, 1), 14);
        assert_eq!(conv_out_dim(5, 5, 1, 0), 1);
        assert_eq!(conv_transpose_out_dim(7, 5, 2, 2), 13);
        assert_eq!(conv_transpose_out_dim(14, 4, 2, 1), 28);
    }

    #[test]
    fn im2col_col2im_are_adjoint() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y.
        let mut rng = Rng64::seed_from_u64(42);
        let (c, h, w, kh, kw, stride, pad) = (2, 5, 4, 3, 3, 2, 1);
        let oh = conv_out_dim(h, kh, stride, pad);
        let ow = conv_out_dim(w, kw, stride, pad);
        let x = Tensor::randn(&[c * h * w], &mut rng);
        let y = Tensor::randn(&[c * kh * kw * oh * ow], &mut rng);
        let mut cols = vec![0.0f32; y.len()];
        im2col(x.data(), c, h, w, kh, kw, stride, pad, oh, ow, &mut cols);
        let mut img = vec![0.0f32; x.len()];
        col2im(y.data(), c, h, w, kh, kw, stride, pad, oh, ow, &mut img);
        let lhs: f32 = cols.iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(&img).map(|(a, b)| a * b).sum();
        assert!(
            (lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn conv_matches_reference_various_configs() {
        let mut rng = Rng64::seed_from_u64(1);
        for (b, c, h, w, o, k, s, p) in [
            (1, 1, 4, 4, 1, 3, 1, 0),
            (2, 3, 6, 5, 4, 3, 1, 1),
            (2, 2, 7, 7, 3, 3, 2, 1),
            (1, 4, 8, 8, 2, 5, 2, 2),
        ] {
            let x = Tensor::randn(&[b, c, h, w], &mut rng);
            let wt = Tensor::randn(&[o, c, k, k], &mut rng);
            let bias = Tensor::randn(&[o], &mut rng);
            let got = conv2d_forward(&x, &wt, &bias, s, p);
            let want = conv_ref(&x, &wt, &bias, s, p);
            assert_eq!(got.shape(), want.shape());
            assert_close(got.data(), want.data(), 1e-3);
        }
    }

    #[test]
    fn conv_t_matches_reference_various_configs() {
        let mut rng = Rng64::seed_from_u64(2);
        for (b, cin, h, w, cout, k, s, p) in [
            (1, 1, 3, 3, 1, 3, 1, 0),
            (2, 4, 4, 4, 2, 5, 2, 2),
            (1, 3, 5, 6, 2, 4, 2, 1),
            (2, 2, 7, 7, 3, 3, 1, 1),
        ] {
            let x = Tensor::randn(&[b, cin, h, w], &mut rng);
            let wt = Tensor::randn(&[cin, cout, k, k], &mut rng);
            let bias = Tensor::randn(&[cout], &mut rng);
            let got = conv_transpose2d_forward(&x, &wt, &bias, s, p);
            let want = conv_t_ref(&x, &wt, &bias, s, p);
            assert_eq!(got.shape(), want.shape());
            assert_close(got.data(), want.data(), 1e-3);
        }
    }

    /// Finite-difference gradient check of conv2d w.r.t. input, weight, bias.
    #[test]
    fn conv_gradients_match_finite_differences() {
        let mut rng = Rng64::seed_from_u64(3);
        let (b, c, h, w, o, k, s, p) = (2, 2, 5, 5, 3, 3, 2, 1);
        let x = Tensor::randn(&[b, c, h, w], &mut rng);
        let wt = Tensor::randn(&[o, c, k, k], &mut rng).scale(0.5);
        let bias = Tensor::randn(&[o], &mut rng);
        // Loss = <out, r> for a fixed random r so dL/dout = r.
        let out = conv2d_forward(&x, &wt, &bias, s, p);
        let r = Tensor::randn(out.shape(), &mut rng);
        let (gx, gw, gb) = conv2d_backward(&x, &wt, &r, s, p);

        let loss = |x_: &Tensor, w_: &Tensor, b_: &Tensor| conv2d_forward(x_, w_, b_, s, p).dot(&r);
        let eps = 1e-2f32;
        for (idx, analytic, which) in [(7usize, &gx, 0u8), (11, &gw, 1), (1, &gb, 2)] {
            let (mut xp, mut wp, mut bp) = (x.clone(), wt.clone(), bias.clone());
            let (mut xm, mut wm, mut bm) = (x.clone(), wt.clone(), bias.clone());
            match which {
                0 => {
                    xp.data_mut()[idx] += eps;
                    xm.data_mut()[idx] -= eps;
                }
                1 => {
                    wp.data_mut()[idx] += eps;
                    wm.data_mut()[idx] -= eps;
                }
                _ => {
                    bp.data_mut()[idx] += eps;
                    bm.data_mut()[idx] -= eps;
                }
            }
            let num = (loss(&xp, &wp, &bp) - loss(&xm, &wm, &bm)) / (2.0 * eps);
            let ana = analytic.data()[idx];
            assert!(
                (num - ana).abs() < 2e-2 * num.abs().max(1.0),
                "which={which} idx={idx}: numeric {num} vs analytic {ana}"
            );
        }
    }

    /// Finite-difference gradient check of conv-transpose2d.
    #[test]
    fn conv_t_gradients_match_finite_differences() {
        let mut rng = Rng64::seed_from_u64(4);
        let (b, cin, h, w, cout, k, s, p) = (2, 3, 4, 4, 2, 4, 2, 1);
        let x = Tensor::randn(&[b, cin, h, w], &mut rng);
        let wt = Tensor::randn(&[cin, cout, k, k], &mut rng).scale(0.5);
        let bias = Tensor::randn(&[cout], &mut rng);
        let out = conv_transpose2d_forward(&x, &wt, &bias, s, p);
        let r = Tensor::randn(out.shape(), &mut rng);
        let (gx, gw, gb) = conv_transpose2d_backward(&x, &wt, &r, s, p);

        let loss = |x_: &Tensor, w_: &Tensor, b_: &Tensor| {
            conv_transpose2d_forward(x_, w_, b_, s, p).dot(&r)
        };
        let eps = 1e-2f32;
        for (idx, analytic, which) in [(5usize, &gx, 0u8), (9, &gw, 1), (0, &gb, 2)] {
            let (mut xp, mut wp, mut bp) = (x.clone(), wt.clone(), bias.clone());
            let (mut xm, mut wm, mut bm) = (x.clone(), wt.clone(), bias.clone());
            match which {
                0 => {
                    xp.data_mut()[idx] += eps;
                    xm.data_mut()[idx] -= eps;
                }
                1 => {
                    wp.data_mut()[idx] += eps;
                    wm.data_mut()[idx] -= eps;
                }
                _ => {
                    bp.data_mut()[idx] += eps;
                    bm.data_mut()[idx] -= eps;
                }
            }
            let num = (loss(&xp, &wp, &bp) - loss(&xm, &wm, &bm)) / (2.0 * eps);
            let ana = analytic.data()[idx];
            assert!(
                (num - ana).abs() < 2e-2 * num.abs().max(1.0),
                "which={which} idx={idx}: numeric {num} vs analytic {ana}"
            );
        }
    }

    /// conv_t forward must equal the adjoint of conv forward:
    /// <conv(x), y> == <x, conv_t(y)> when they share (suitably reshaped) weights.
    #[test]
    fn conv_t_is_adjoint_of_conv() {
        let mut rng = Rng64::seed_from_u64(5);
        // Geometry chosen so the conv round-trips exactly:
        // (h + 2p - k) divisible by s makes conv_t(conv shape) == input shape.
        let (c, h, w, o, k, s, p) = (2, 7, 7, 3, 3, 2, 1);
        let oh = conv_out_dim(h, k, s, p);
        let ow = conv_out_dim(w, k, s, p);
        let x = Tensor::randn(&[1, c, h, w], &mut rng);
        let y = Tensor::randn(&[1, o, oh, ow], &mut rng);
        // conv weight (o, c, k, k); conv_t weight with cin=o, cout=c must be
        // the same tensor viewed as (o, c, k, k).
        let wt = Tensor::randn(&[o, c, k, k], &mut rng);
        let no_bias = Tensor::zeros(&[0]);
        let cx = conv2d_forward(&x, &wt, &no_bias, s, p);
        let cty = conv_transpose2d_forward(&y, &wt, &no_bias, s, p);
        let lhs = cx.dot(&y);
        let rhs = x.dot(&cty);
        assert!(
            (lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn conv_without_bias() {
        let mut rng = Rng64::seed_from_u64(6);
        let x = Tensor::randn(&[1, 1, 4, 4], &mut rng);
        let wt = Tensor::randn(&[1, 1, 3, 3], &mut rng);
        let out = conv2d_forward(&x, &wt, &Tensor::zeros(&[0]), 1, 0);
        let want = conv_ref(&x, &wt, &Tensor::zeros(&[0]), 1, 0);
        assert_close(out.data(), want.data(), 1e-4);
    }

    #[test]
    #[should_panic(expected = "input dim must be positive")]
    fn conv_transpose_out_dim_rejects_zero_input() {
        // Regression: `(input - 1) * stride` used to underflow (wrapping in
        // release builds) instead of failing with a clear message.
        conv_transpose_out_dim(0, 3, 2, 1);
    }

    #[test]
    fn zero_batch_conv_forward_backward() {
        // Regression: a zero-sample batch used to panic inside
        // parallel_for_chunks ("n == 0") instead of producing empty outputs.
        let mut rng = Rng64::seed_from_u64(7);
        let x = Tensor::zeros(&[0, 2, 5, 5]);
        let wt = Tensor::randn(&[3, 2, 3, 3], &mut rng);
        let bias = Tensor::randn(&[3], &mut rng);
        let out = conv2d_forward(&x, &wt, &bias, 2, 1);
        assert_eq!(out.shape(), &[0, 3, 3, 3]);
        let (gx, gw, gbias) = conv2d_backward(&x, &wt, &out, 2, 1);
        assert_eq!(gx.shape(), x.shape());
        assert!(gw.data().iter().all(|&v| v == 0.0));
        assert!(gbias.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn zero_batch_conv_transpose_forward_backward() {
        let mut rng = Rng64::seed_from_u64(8);
        let x = Tensor::zeros(&[0, 3, 4, 4]);
        let wt = Tensor::randn(&[3, 2, 4, 4], &mut rng);
        let bias = Tensor::randn(&[2], &mut rng);
        let out = conv_transpose2d_forward(&x, &wt, &bias, 2, 1);
        assert_eq!(out.shape(), &[0, 2, 8, 8]);
        let (gx, gw, gbias) = conv_transpose2d_backward(&x, &wt, &out, 2, 1);
        assert_eq!(gx.shape(), x.shape());
        assert!(gw.data().iter().all(|&v| v == 0.0));
        assert!(gbias.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn backward_acc_accumulates_into_existing_grads() {
        let mut rng = Rng64::seed_from_u64(9);
        let x = Tensor::randn(&[2, 2, 5, 5], &mut rng);
        let wt = Tensor::randn(&[3, 2, 3, 3], &mut rng);
        let g = Tensor::randn(&[2, 3, 3, 3], &mut rng);
        let (gx_ref, gw_ref, gb_ref) = conv2d_backward(&x, &wt, &g, 2, 1);
        // Accumulating twice into non-zero grads equals 2x the fresh result.
        let mut gw = Tensor::zeros(wt.shape());
        let mut gbias = Tensor::zeros(&[3]);
        let gx1 = conv2d_backward_acc(&x, &wt, &g, 2, 1, &mut gw, &mut gbias);
        let _ = conv2d_backward_acc(&x, &wt, &g, 2, 1, &mut gw, &mut gbias);
        crate::assert_close(gx1.data(), gx_ref.data(), 1e-5);
        crate::assert_close(gw.data(), gw_ref.scale(2.0).data(), 1e-4);
        crate::assert_close(gbias.data(), gb_ref.scale(2.0).data(), 1e-4);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn conv_rejects_channel_mismatch() {
        conv2d_forward(
            &Tensor::zeros(&[1, 2, 4, 4]),
            &Tensor::zeros(&[1, 3, 3, 3]),
            &Tensor::zeros(&[0]),
            1,
            0,
        );
    }
}
