//! 2-D matrix multiplication and transpose.
//!
//! All three multiply variants (`A·B`, `A·Bᵀ`, `Aᵀ·B`) lower to the shared
//! packed, cache-blocked micro-kernel in [`super::gemm`]; this module owns
//! only the shape checking, the [`Layout`] mapping, and the output buffers
//! (drawn from [`crate::workspace`]). The free `*_into` functions are the
//! allocation-free entry points used by `conv2d` and the `md-nn` layers.

use crate::ops::gemm::{self, Layout};
use crate::parallel;
use crate::tensor::Tensor;
use crate::workspace;

impl Tensor {
    /// Matrix product of two 2-D tensors: `(m, k) x (k, n) -> (m, n)`.
    ///
    /// # Panics
    /// Panics if either operand is not 2-D or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.ndim(),
            2,
            "matmul lhs must be 2-D, got {:?}",
            self.shape()
        );
        assert_eq!(
            other.ndim(),
            2,
            "matmul rhs must be 2-D, got {:?}",
            other.shape()
        );
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        assert_eq!(
            k,
            k2,
            "matmul inner dims differ: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = workspace::take_filled(m * n, 0.0);
        gemm::gemm_into(Layout::NN, self.data(), other.data(), &mut out, m, k, n);
        Tensor::new(&[m, n], out)
    }

    /// Transpose of a 2-D tensor.
    pub fn t(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "t() requires a 2-D tensor");
        let (m, n) = (self.shape()[0], self.shape()[1]);
        let src = self.data();
        let mut out = workspace::take_filled(m * n, 0.0);
        // One output row (length m) per source column; a pure copy, so the
        // result is thread-count independent.
        parallel::parallel_for_chunks(&mut out, n, m, |j, orow| {
            for (i, o) in orow.iter_mut().enumerate() {
                *o = src[i * n + j];
            }
        });
        Tensor::new(&[n, m], out)
    }

    /// `self (m,k) x other^T` where `other` is `(n,k)` — avoids materializing
    /// the transpose in hot backward paths.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2);
        assert_eq!(other.ndim(), 2);
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (n, k2) = (other.shape()[0], other.shape()[1]);
        assert_eq!(
            k,
            k2,
            "matmul_nt inner dims differ: {:?} x {:?}^T",
            self.shape(),
            other.shape()
        );
        let mut out = workspace::take_filled(m * n, 0.0);
        gemm::gemm_into(Layout::NT, self.data(), other.data(), &mut out, m, k, n);
        Tensor::new(&[m, n], out)
    }

    /// `self^T x other` where `self` is `(k,m)` and `other` is `(k,n)` —
    /// the weight-gradient pattern `x^T · dy`.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2);
        assert_eq!(other.ndim(), 2);
        let (k, m) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        assert_eq!(
            k,
            k2,
            "matmul_tn inner dims differ: {:?}^T x {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = workspace::take_filled(m * n, 0.0);
        gemm::gemm_into(Layout::TN, self.data(), other.data(), &mut out, m, k, n);
        Tensor::new(&[m, n], out)
    }
}

/// Writes `a (m,k) x b (k,n)` into `out (m,n)`, overwriting it.
pub fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm::gemm_into(Layout::NN, a, b, out, m, k, n);
}

/// Writes `a (m,k) x b^T` (with `b` stored `(n,k)`) into `out (m,n)`.
pub fn matmul_nt_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm::gemm_into(Layout::NT, a, b, out, m, k, n);
}

/// Writes `a^T x b` (with `a` stored `(k,m)`, `b` stored `(k,n)`) into
/// `out (m,n)`.
pub fn matmul_tn_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm::gemm_into(Layout::TN, a, b, out, m, k, n);
}

/// `out += a (m,k) x b (k,n)` — gradient accumulation without a temporary.
pub fn matmul_acc_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm::gemm_acc_into(Layout::NN, a, b, out, m, k, n);
}

/// `out += a (m,k) x b^T` with `b` stored `(n,k)`.
pub fn matmul_nt_acc_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm::gemm_acc_into(Layout::NT, a, b, out, m, k, n);
}

/// `out += a^T x b` with `a` stored `(k,m)`, `b` stored `(k,n)` — the
/// weight-gradient pattern `grad_w += x^T · dy` directly into the gradient
/// buffer.
pub fn matmul_tn_acc_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm::gemm_acc_into(Layout::TN, a, b, out, m, k, n);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;
    use crate::rng::Rng64;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                *out.at_mut(&[i, j]) = acc;
            }
        }
        out
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::new(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::new(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng64::seed_from_u64(1);
        let a = Tensor::randn(&[4, 4], &mut rng);
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            *eye.at_mut(&[i, i]) = 1.0;
        }
        assert_close(a.matmul(&eye).data(), a.data(), 1e-6);
        assert_close(eye.matmul(&a).data(), a.data(), 1e-6);
    }

    #[test]
    fn matches_naive_on_random_sizes() {
        let mut rng = Rng64::seed_from_u64(5);
        for (m, k, n) in [(1, 1, 1), (3, 5, 2), (8, 8, 8), (17, 31, 13), (64, 96, 80)] {
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            assert_close(a.matmul(&b).data(), naive(&a, &b).data(), 1e-3);
        }
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Rng64::seed_from_u64(2);
        let a = Tensor::randn(&[3, 7], &mut rng);
        let tt = a.t().t();
        assert_eq!(tt.shape(), a.shape());
        assert_eq!(tt.data(), a.data());
    }

    #[test]
    fn transpose_swaps_indices() {
        let a = Tensor::arange(6).into_reshape(&[2, 3]);
        let at = a.t();
        assert_eq!(at.shape(), &[3, 2]);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(a.at(&[i, j]), at.at(&[j, i]));
            }
        }
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let mut rng = Rng64::seed_from_u64(3);
        let a = Tensor::randn(&[5, 7], &mut rng);
        let b = Tensor::randn(&[4, 7], &mut rng);
        assert_close(a.matmul_nt(&b).data(), a.matmul(&b.t()).data(), 1e-4);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let mut rng = Rng64::seed_from_u64(4);
        let a = Tensor::randn(&[7, 5], &mut rng);
        let b = Tensor::randn(&[7, 4], &mut rng);
        assert_close(a.matmul_tn(&b).data(), a.t().matmul(&b).data(), 1e-4);
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn mismatched_inner_dims_panic() {
        Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn zero_sized_matmul() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[0, 2]);
    }

    #[test]
    fn zero_sized_matmul_nt() {
        // Regression: m == 0 used to trip parallel_for_chunks' `n > 0`
        // assert, and n == 0 used to panic in `chunks_mut(0)`.
        let c = Tensor::zeros(&[0, 3]).matmul_nt(&Tensor::zeros(&[2, 3]));
        assert_eq!(c.shape(), &[0, 2]);
        let c = Tensor::zeros(&[2, 3]).matmul_nt(&Tensor::zeros(&[0, 3]));
        assert_eq!(c.shape(), &[2, 0]);
        let c = Tensor::zeros(&[2, 0]).matmul_nt(&Tensor::zeros(&[3, 0]));
        assert_eq!(c.shape(), &[2, 3]);
        assert!(c.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn zero_sized_matmul_tn() {
        let c = Tensor::zeros(&[3, 0]).matmul_tn(&Tensor::zeros(&[3, 2]));
        assert_eq!(c.shape(), &[0, 2]);
        let c = Tensor::zeros(&[3, 2]).matmul_tn(&Tensor::zeros(&[3, 0]));
        assert_eq!(c.shape(), &[2, 0]);
        let c = Tensor::zeros(&[0, 2]).matmul_tn(&Tensor::zeros(&[0, 3]));
        assert_eq!(c.shape(), &[2, 3]);
        assert!(c.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn zero_sized_transpose() {
        let t = Tensor::zeros(&[0, 4]).t();
        assert_eq!(t.shape(), &[4, 0]);
        let t = Tensor::zeros(&[4, 0]).t();
        assert_eq!(t.shape(), &[0, 4]);
    }

    #[test]
    fn associativity_within_tolerance() {
        let mut rng = Rng64::seed_from_u64(6);
        let a = Tensor::randn(&[4, 5], &mut rng);
        let b = Tensor::randn(&[5, 6], &mut rng);
        let c = Tensor::randn(&[6, 3], &mut rng);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        assert_close(left.data(), right.data(), 1e-3);
    }

    /// Regression for the removed `av == 0.0` skip branch: zeros and signed
    /// zeros multiply through like any other value, and `0 · NaN` now
    /// propagates NaN per IEEE 754 (the old kernel silently skipped it).
    #[test]
    fn zeros_signed_zeros_and_nan_propagation() {
        // Plenty of (signed) zeros in both operands: results must be
        // bitwise what the in-order naive loop computes.
        let a = Tensor::new(&[2, 4], vec![0.0, -0.0, 1.5, 0.0, -2.0, 0.0, -0.0, 3.0]);
        let b = Tensor::new(&[4, 2], vec![4.0, -0.0, 0.0, 5.0, -6.0, 0.0, 0.0, -7.0]);
        let got = a.matmul(&b);
        let want = naive(&a, &b);
        for (x, y) in got.data().iter().zip(want.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }

        // A zero in `a` against a NaN in `b`: 0 * NaN = NaN must reach the
        // output (row 0 hits the NaN with av == 0.0).
        let a = Tensor::new(&[2, 2], vec![0.0, 1.0, 2.0, 3.0]);
        let b = Tensor::new(&[2, 2], vec![f32::NAN, 4.0, 5.0, 6.0]);
        let c = a.matmul(&b);
        assert!(c.at(&[0, 0]).is_nan(), "0 * NaN must propagate");
        assert!(c.at(&[1, 0]).is_nan());
        assert_eq!(c.at(&[0, 1]), 6.0);

        // Same contract for the transposed variants, which had the same
        // skip (matmul_tn) or a dot-product form (matmul_nt).
        let c = a.matmul_nt(&b.t());
        assert!(c.at(&[0, 0]).is_nan());
        let c = a.t().matmul_tn(&b);
        assert!(c.at(&[0, 0]).is_nan());

        // Signed-zero arithmetic is preserved exactly: (-0)·4 + 0·5 = 0
        // with the sign the in-order sum produces.
        let a = Tensor::new(&[1, 2], vec![-0.0, 0.0]);
        let b = Tensor::new(&[2, 1], vec![4.0, 5.0]);
        let want = (-0.0f32 * 4.0) + (0.0f32 * 5.0);
        assert_eq!(a.matmul(&b).data()[0].to_bits(), want.to_bits());
    }

    /// The `*_into` / `*_acc_into` free functions agree with the tensor-level
    /// wrappers bitwise.
    #[test]
    fn into_variants_match_wrappers() {
        let mut rng = Rng64::seed_from_u64(8);
        let (m, k, n) = (9, 11, 6);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let bt = b.t();
        let at = a.t();

        let mut out = vec![9.0f32; m * n];
        matmul_into(a.data(), b.data(), &mut out, m, k, n);
        assert_eq!(out, a.matmul(&b).data());

        matmul_nt_into(a.data(), bt.data(), &mut out, m, k, n);
        assert_eq!(out, a.matmul_nt(&bt).data());

        matmul_tn_into(at.data(), b.data(), &mut out, m, k, n);
        assert_eq!(out, at.matmul_tn(&b).data());

        // acc variant: seed with ones, expect ones + product, computed
        // by in-order accumulation starting from the seed.
        let mut acc = vec![1.0f32; m * n];
        matmul_acc_into(a.data(), b.data(), &mut acc, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let mut s = 1.0f32;
                for p in 0..k {
                    s = a.data()[i * k + p].mul_add(b.data()[p * n + j], s);
                }
                assert_eq!(s.to_bits(), acc[i * n + j].to_bits());
            }
        }
    }
}
