//! Reductions: global and per-axis sums/means/maxima, argmax, softmax and
//! log-sum-exp (numerically stable), used by losses and metrics.

use crate::tensor::Tensor;
use crate::workspace;

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Mean of all elements.
    ///
    /// # Panics
    /// Panics on an empty tensor.
    pub fn mean(&self) -> f32 {
        assert!(!self.is_empty(), "mean of empty tensor");
        self.sum() / self.len() as f32
    }

    /// Maximum element.
    pub fn max(&self) -> f32 {
        assert!(!self.is_empty(), "max of empty tensor");
        self.data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        assert!(!self.is_empty(), "min of empty tensor");
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Population variance of all elements.
    pub fn variance(&self) -> f32 {
        let m = self.mean();
        self.data().iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / self.len() as f32
    }

    /// Fused health reduction: the maximum absolute element, or `None` if
    /// any element is NaN or ±Inf.
    ///
    /// One pass over the data (finiteness check fused into the max fold),
    /// so training-health monitors can probe losses/parameters/gradients
    /// without a second traversal. Empty tensors are vacuously healthy with
    /// a max of `0.0`.
    pub fn finite_max_abs(&self) -> Option<f32> {
        let mut mx = 0.0f32;
        for &v in self.data() {
            // `abs` of NaN is NaN; a single comparison-based fold would
            // silently skip it, so check finiteness explicitly.
            if !v.is_finite() {
                return None;
            }
            let a = v.abs();
            if a > mx {
                mx = a;
            }
        }
        Some(mx)
    }

    /// Sums over axis 0: `(n0, rest...) -> (rest...)`.
    pub fn sum_axis0(&self) -> Tensor {
        assert!(self.ndim() >= 1, "sum_axis0 on scalar");
        let n0 = self.shape()[0];
        let rest: usize = self.shape()[1..].iter().product();
        let mut out = workspace::take_zeroed(rest);
        for i in 0..n0 {
            let row = &self.data()[i * rest..(i + 1) * rest];
            for (o, &v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
        Tensor::new(&self.shape()[1..], out)
    }

    /// Means over axis 0.
    pub fn mean_axis0(&self) -> Tensor {
        let n0 = self.shape()[0].max(1);
        self.sum_axis0().scale(1.0 / n0 as f32)
    }

    /// Row sums of a 2-D tensor: `(m, n) -> (m,)`.
    pub fn sum_axis1(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "sum_axis1 requires 2-D");
        let (m, n) = (self.shape()[0], self.shape()[1]);
        let mut out = workspace::take_raw(m);
        for i in 0..m {
            out.push(self.data()[i * n..(i + 1) * n].iter().sum());
        }
        Tensor::new(&[m], out)
    }

    /// Per-row argmax of a 2-D tensor — used for classifier predictions.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.ndim(), 2, "argmax_rows requires 2-D");
        let (m, n) = (self.shape()[0], self.shape()[1]);
        let mut out = Vec::with_capacity(m);
        for i in 0..m {
            let row = &self.data()[i * n..(i + 1) * n];
            let mut best = 0usize;
            for j in 1..n {
                if row[j] > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        out
    }

    /// Numerically stable row-wise softmax of a 2-D logits tensor.
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "softmax_rows requires 2-D");
        let (m, n) = (self.shape()[0], self.shape()[1]);
        let mut out = workspace::take_zeroed(m * n);
        for i in 0..m {
            let row = &self.data()[i * n..(i + 1) * n];
            let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let orow = &mut out[i * n..(i + 1) * n];
            let mut z = 0.0f32;
            for (o, &v) in orow.iter_mut().zip(row) {
                *o = (v - mx).exp();
                z += *o;
            }
            for o in orow.iter_mut() {
                *o /= z;
            }
        }
        Tensor::new(&[m, n], out)
    }

    /// Numerically stable row-wise log-softmax.
    pub fn log_softmax_rows(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "log_softmax_rows requires 2-D");
        let (m, n) = (self.shape()[0], self.shape()[1]);
        let mut out = workspace::take_zeroed(m * n);
        for i in 0..m {
            let row = &self.data()[i * n..(i + 1) * n];
            let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = mx + row.iter().map(|&v| (v - mx).exp()).sum::<f32>().ln();
            for (o, &v) in out[i * n..(i + 1) * n].iter_mut().zip(row) {
                *o = v - lse;
            }
        }
        Tensor::new(&[m, n], out)
    }

    /// Per-(batch, channel) spatial sum: `(B, C, H, W) -> (C,)` summed over
    /// batch and space — the conv bias-gradient pattern.
    pub fn sum_spatial_per_channel(&self) -> Tensor {
        assert_eq!(self.ndim(), 4, "sum_spatial_per_channel requires 4-D");
        let (b, c, h, w) = (
            self.shape()[0],
            self.shape()[1],
            self.shape()[2],
            self.shape()[3],
        );
        let hw = h * w;
        let mut out = workspace::take_zeroed(c);
        for bi in 0..b {
            for (ci, acc) in out.iter_mut().enumerate() {
                let base = (bi * c + ci) * hw;
                *acc += self.data()[base..base + hw].iter().sum::<f32>();
            }
        }
        Tensor::new(&[c], out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    #[test]
    fn global_reductions() {
        let t = Tensor::new(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.sum(), 21.0);
        assert_eq!(t.mean(), 3.5);
        assert_eq!(t.max(), 6.0);
        assert_eq!(t.min(), 1.0);
    }

    #[test]
    fn finite_max_abs_fuses_check_and_max() {
        let t = Tensor::new(&[4], vec![1.0, -3.5, 2.0, 0.0]);
        assert_eq!(t.finite_max_abs(), Some(3.5));
        assert_eq!(Tensor::zeros(&[0]).finite_max_abs(), Some(0.0));
        for poison in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let t = Tensor::new(&[3], vec![1.0, poison, 2.0]);
            assert_eq!(t.finite_max_abs(), None, "{poison} not caught");
        }
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(Tensor::full(&[10], 3.0).variance(), 0.0);
    }

    #[test]
    fn variance_known_value() {
        let t = Tensor::new(&[4], vec![1.0, 2.0, 3.0, 4.0]);
        assert!((t.variance() - 1.25).abs() < 1e-6);
    }

    #[test]
    fn sum_axis0_collapses_batch() {
        let t = Tensor::new(&[2, 3], vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0]);
        assert_eq!(t.sum_axis0().data(), &[11.0, 22.0, 33.0]);
        assert_close(t.mean_axis0().data(), &[5.5, 11.0, 16.5], 1e-6);
    }

    #[test]
    fn sum_axis1_row_sums() {
        let t = Tensor::new(&[2, 3], vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0]);
        assert_eq!(t.sum_axis1().data(), &[6.0, 60.0]);
    }

    #[test]
    fn argmax_rows_picks_maximum() {
        let t = Tensor::new(&[2, 3], vec![0.1, 0.9, 0.0, 5.0, -1.0, 2.0]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::new(&[2, 4], vec![1.0, 2.0, 3.0, 4.0, -1.0, 0.0, 1.0, 100.0]);
        let s = t.softmax_rows();
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {i} sums to {sum}");
        }
        // Large-logit row must not produce NaN.
        assert!(s.all_finite());
        assert!(s.at(&[1, 3]) > 0.99);
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let t = Tensor::new(&[1, 3], vec![0.5, -0.5, 2.0]);
        let a = t.softmax_rows().ln();
        let b = t.log_softmax_rows();
        assert_close(a.data(), b.data(), 1e-5);
    }

    #[test]
    fn softmax_invariant_to_shift() {
        let t = Tensor::new(&[1, 3], vec![1.0, 2.0, 3.0]);
        let shifted = t.add_scalar(100.0);
        assert_close(t.softmax_rows().data(), shifted.softmax_rows().data(), 1e-5);
    }

    #[test]
    fn channel_sum_pattern() {
        // (B=2, C=2, H=1, W=2)
        let t = Tensor::new(&[2, 2, 1, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(
            t.sum_spatial_per_channel().data(),
            &[1.0 + 2.0 + 5.0 + 6.0, 3.0 + 4.0 + 7.0 + 8.0]
        );
    }
}
