//! Elementwise arithmetic with broadcasting, unary maps, and the in-place
//! update primitives used by the optimizers.

use crate::shape::Shape;
use crate::tensor::Tensor;
use crate::workspace;

/// Applies `f(a_i, b_i)` elementwise with NumPy broadcasting.
fn broadcast_zip(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    // Fast path: identical shapes.
    if a.shape() == b.shape() {
        let mut data = workspace::take_raw(a.len());
        data.extend(a.data().iter().zip(b.data()).map(|(&x, &y)| f(x, y)));
        return Tensor::new(a.shape(), data);
    }
    let out_shape = Shape::broadcast(a.shape_obj(), b.shape_obj())
        .unwrap_or_else(|| panic!("cannot broadcast {:?} with {:?}", a.shape(), b.shape()));
    let nd = out_shape.ndim();
    let out_dims = out_shape.dims().to_vec();
    let a_strides = padded_broadcast_strides(a, &out_dims);
    let b_strides = padded_broadcast_strides(b, &out_dims);

    let n = out_shape.numel();
    let mut data = workspace::take_raw(n);
    let mut idx = vec![0usize; nd];
    let mut a_off = 0usize;
    let mut b_off = 0usize;
    for _ in 0..n {
        data.push(f(a.data()[a_off], b.data()[b_off]));
        // Increment the multi-index (row-major), updating offsets incrementally.
        for d in (0..nd).rev() {
            idx[d] += 1;
            a_off += a_strides[d];
            b_off += b_strides[d];
            if idx[d] < out_dims[d] {
                break;
            }
            a_off -= a_strides[d] * out_dims[d];
            b_off -= b_strides[d] * out_dims[d];
            idx[d] = 0;
        }
    }
    Tensor::new(&out_dims, data)
}

/// Effective strides of `t` when broadcast to `out_dims`: broadcast (size-1)
/// dimensions get stride 0, left-padding gets stride 0.
fn padded_broadcast_strides(t: &Tensor, out_dims: &[usize]) -> Vec<usize> {
    let nd = out_dims.len();
    let pad = nd - t.ndim();
    let t_strides = t.shape_obj().strides();
    let mut s = vec![0usize; nd];
    for i in 0..t.ndim() {
        let dim = t.shape()[i];
        assert!(
            dim == out_dims[i + pad] || dim == 1,
            "shape {:?} does not broadcast to {:?}",
            t.shape(),
            out_dims
        );
        s[i + pad] = if dim == 1 { 0 } else { t_strides[i] };
    }
    s
}

impl Tensor {
    /// Elementwise addition with broadcasting.
    pub fn add(&self, other: &Tensor) -> Tensor {
        broadcast_zip(self, other, |a, b| a + b)
    }

    /// Elementwise subtraction with broadcasting.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        broadcast_zip(self, other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) multiplication with broadcasting.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        broadcast_zip(self, other, |a, b| a * b)
    }

    /// Elementwise division with broadcasting.
    pub fn div(&self, other: &Tensor) -> Tensor {
        broadcast_zip(self, other, |a, b| a / b)
    }

    /// Elementwise maximum with broadcasting.
    pub fn maximum(&self, other: &Tensor) -> Tensor {
        broadcast_zip(self, other, |a, b| a.max(b))
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x + s)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        self.map(|x| -x)
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut data = workspace::take_raw(self.len());
        data.extend(self.data().iter().map(|&x| f(x)));
        Tensor::new(self.shape(), data)
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in self.data_mut() {
            *v = f(*v);
        }
    }

    /// In-place `self += other` (shapes must match exactly).
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += b;
        }
    }

    /// In-place `self -= other` (shapes must match exactly).
    pub fn sub_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "sub_assign shape mismatch");
        for (a, &b) in self.data_mut().iter_mut().zip(other.data()) {
            *a -= b;
        }
    }

    /// In-place `self += alpha * other` — the BLAS `axpy` primitive used by
    /// SGD and gradient accumulation.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += alpha * b;
        }
    }

    /// In-place scaling `self *= s`.
    pub fn scale_inplace(&mut self, s: f32) {
        for v in self.data_mut() {
            *v *= s;
        }
    }

    /// Fills the tensor with a constant.
    pub fn fill(&mut self, value: f32) {
        for v in self.data_mut() {
            *v = value;
        }
    }

    /// Elementwise natural exponential.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Tensor {
        self.map(f32::ln)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Elementwise square.
    pub fn square(&self) -> Tensor {
        self.map(|x| x * x)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Elementwise clamp into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data().iter().map(|&x| x * x).sum()
    }

    /// L2 norm of all elements.
    pub fn norm(&self) -> f32 {
        self.sq_norm().sqrt()
    }

    /// Dot product of two tensors viewed as flat vectors.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.len(), other.len(), "dot length mismatch");
        self.data()
            .iter()
            .zip(other.data())
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// True iff all elements are finite (no NaN/inf) — used as a training
    /// health check.
    pub fn all_finite(&self) -> bool {
        self.data().iter().all(|x| x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    #[test]
    fn add_same_shape() {
        let a = Tensor::new(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::new(&[2, 2], vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(a.add(&b).data(), &[11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn broadcast_row_vector() {
        let a = Tensor::new(&[2, 3], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let b = Tensor::new(&[3], vec![10.0, 20.0, 30.0]);
        assert_eq!(a.add(&b).data(), &[10.0, 21.0, 32.0, 13.0, 24.0, 35.0]);
    }

    #[test]
    fn broadcast_column_vector() {
        let a = Tensor::new(&[2, 3], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let b = Tensor::new(&[2, 1], vec![100.0, 200.0]);
        assert_eq!(
            a.add(&b).data(),
            &[100.0, 101.0, 102.0, 203.0, 204.0, 205.0]
        );
    }

    #[test]
    fn broadcast_scalar_tensor() {
        let a = Tensor::new(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let s = Tensor::scalar(0.5);
        assert_eq!(a.mul(&s).data(), &[0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    fn broadcast_both_expand() {
        let a = Tensor::new(&[2, 1], vec![1.0, 2.0]);
        let b = Tensor::new(&[1, 3], vec![10.0, 20.0, 30.0]);
        let c = a.add(&b);
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.data(), &[11.0, 21.0, 31.0, 12.0, 22.0, 32.0]);
    }

    #[test]
    #[should_panic(expected = "cannot broadcast")]
    fn incompatible_broadcast_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 3]);
        a.add(&b);
    }

    #[test]
    fn sub_mul_div() {
        let a = Tensor::new(&[3], vec![4.0, 9.0, 16.0]);
        let b = Tensor::new(&[3], vec![2.0, 3.0, 4.0]);
        assert_eq!(a.sub(&b).data(), &[2.0, 6.0, 12.0]);
        assert_eq!(a.mul(&b).data(), &[8.0, 27.0, 64.0]);
        assert_eq!(a.div(&b).data(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut a = Tensor::new(&[3], vec![1.0, 2.0, 3.0]);
        let g = Tensor::new(&[3], vec![10.0, 10.0, 10.0]);
        a.axpy(-0.1, &g);
        assert_close(a.data(), &[0.0, 1.0, 2.0], 1e-6);
    }

    #[test]
    fn unary_maps() {
        let a = Tensor::new(&[2], vec![1.0, 4.0]);
        assert_eq!(a.sqrt().data(), &[1.0, 2.0]);
        assert_eq!(a.square().data(), &[1.0, 16.0]);
        assert_eq!(a.neg().data(), &[-1.0, -4.0]);
        assert_close(a.exp().data(), &[1.0f32.exp(), 4.0f32.exp()], 1e-6);
    }

    #[test]
    fn norms_and_dot() {
        let a = Tensor::new(&[2], vec![3.0, 4.0]);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.sq_norm(), 25.0);
        let b = Tensor::new(&[2], vec![1.0, 2.0]);
        assert_eq!(a.dot(&b), 11.0);
    }

    #[test]
    fn clamp_and_maximum() {
        let a = Tensor::new(&[4], vec![-2.0, 0.5, 2.0, 10.0]);
        assert_eq!(a.clamp(0.0, 1.0).data(), &[0.0, 0.5, 1.0, 1.0]);
        let b = Tensor::full(&[4], 1.0);
        assert_eq!(a.maximum(&b).data(), &[1.0, 1.0, 2.0, 10.0]);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut a = Tensor::ones(&[3]);
        assert!(a.all_finite());
        a.data_mut()[1] = f32::NAN;
        assert!(!a.all_finite());
    }

    #[test]
    fn broadcast_3d_bias_pattern() {
        // The (B, C, H, W) + (1, C, 1, 1) bias pattern used by conv layers.
        let x = Tensor::zeros(&[2, 3, 2, 2]);
        let bias = Tensor::new(&[1, 3, 1, 1], vec![1.0, 2.0, 3.0]);
        let y = x.add(&bias);
        assert_eq!(y.shape(), &[2, 3, 2, 2]);
        assert_eq!(y.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(y.at(&[1, 1, 0, 0]), 2.0);
        assert_eq!(y.at(&[1, 2, 1, 0]), 3.0);
    }
}
