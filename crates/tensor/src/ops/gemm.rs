//! The packed, cache-blocked GEMM micro-kernel every dense multiply in the
//! workspace runs on: `matmul`, `matmul_nt`, `matmul_tn` and the im2col
//! GEMMs inside `conv2d` / `conv_transpose2d` all lower to [`gemm_into`] /
//! [`gemm_acc_into`] with a [`Layout`] tag.
//!
//! # Structure
//!
//! The kernel follows the classic three-level blocking of high-performance
//! BLAS (Goto-style), sized for this crate's GAN workloads:
//!
//! * the output is cut into row blocks of [`MC`] rows — the unit of
//!   parallelism (one row block per pool task, disjoint output slices);
//! * the shared `k` dimension is cut into panels of [`KC`] — the packed
//!   A block (`MC x KC`, 32 KiB) stays L1/L2-resident while it is reused
//!   across the whole `n` extent;
//! * the `n` dimension is cut into panels of [`NC`] — the packed B block
//!   (`KC x NC`, 256 KiB) stays L2-resident while every row of the A block
//!   streams over it.
//!
//! Both operands are **packed** into thread-local scratch before the inner
//! loops run: A as [`MR`]-interleaved row panels (one tile *column* per
//! `k` step), B as column *slivers* of [`NR`] = 16 columns laid out
//! `p`-major, so the innermost loop reads both operands at stride 1
//! regardless of the logical [`Layout`]. The micro-kernel computes an
//! [`MR`]`x`[`NR`] = 4x16 register tile: 8 vector accumulators (AVX2 ymm)
//! with one broadcast fused multiply-add per operand element — no loads or
//! stores of the output inside the `k` loop, and eight independent
//! accumulation chains to hide the FMA latency. On x86-64 with FMA the
//! inner loop is hand-written with `core::arch` intrinsics (the exact same
//! operation chain, see below); elsewhere a scalar `mul_add` loop compiles
//! to the equivalent fused code.
//!
//! # Determinism
//!
//! Every output element is accumulated over `k` **in ascending order, one
//! [`f32::mul_add`] per step** (fused, single rounding — the FMA unit is
//! where half the machine's FLOP/s live):
//!
//! * k-panels are visited in ascending order and each panel resumes from
//!   the partial sum of the previous one, so the chain of fused
//!   multiply-adds for a given element is identical to an unblocked
//!   in-order loop — the packed kernel is **bitwise identical to the
//!   naive reference** ([`naive_gemm`], which uses the same `mul_add`
//!   chain; no reassociation anywhere);
//! * row blocks are fixed-size ([`MC`]) and each is computed entirely by
//!   one task, so the split — and therefore every intermediate rounding —
//!   is independent of `TENSOR_THREADS`. Results are bitwise identical for
//!   any thread count, preserving the repo's determinism contract.
//!
//! There is deliberately **no zero-skip branch** (the old kernel's
//! `if av == 0.0 { continue }`): it blocked vectorization of the inner
//! loop and silently dropped `0.0 * NaN` / `0.0 * inf` contributions, so
//! NaNs now propagate exactly as IEEE 754 (and the naive reference) say
//! they must.
//!
//! # Allocation
//!
//! Packing buffers are thread-local and sized once ([`MC`]`*`[`KC`] +
//! [`KC`]`*`[`NC`] elements, ~288 KiB per thread); steady-state GEMM calls
//! perform zero heap allocation. Output buffers are the caller's business —
//! the tensor-level wrappers draw them from [`crate::workspace`].

use crate::parallel;
use std::cell::RefCell;

/// Rows per parallel row block (the packed A block is `MC x KC`).
pub const MC: usize = 32;
/// Shared-dimension panel length.
pub const KC: usize = 256;
/// Column panel width (the packed B block is `KC x NC`).
pub const NC: usize = 256;
/// Register-tile width: columns per packed B sliver (two 8-wide vector
/// registers per row on AVX2).
pub const NR: usize = 16;
/// Register-tile height: rows per micro-kernel invocation, chosen so the
/// tile holds 8 vector accumulators — eight independent fused-multiply-add
/// dependency chains, enough to cover the FMA latency on current cores:
/// 8x16 on AVX-512 (one zmm per row), 4x16 elsewhere (two ymm per row).
/// The tile shape never affects results — every output element's
/// accumulation chain is fixed by the `k` order alone.
#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
pub const MR: usize = 8;
/// Register-tile height (non-AVX-512 builds): see above.
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx512f")))]
pub const MR: usize = 4;

/// Storage layout of a GEMM's operands. The logical product is always
/// `A (m,k) x B (k,n) -> out (m,n)`; the tag says how the operand slices
/// are laid out in memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layout {
    /// `a` is row-major `(m,k)`, `b` is row-major `(k,n)`.
    NN,
    /// `a` is row-major `(m,k)`, `b` is row-major `(n,k)` (i.e. `B = b^T`).
    NT,
    /// `a` is row-major `(k,m)` (i.e. `A = a^T`), `b` is row-major `(k,n)`.
    TN,
}

thread_local! {
    /// Per-thread packing scratch: (A block, B block). GEMM never nests
    /// inside itself, so a plain RefCell suffices; pool workers each carry
    /// their own pair.
    static PACK: RefCell<(Vec<f32>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// `out = A x B` (overwrite). See [`Layout`] for operand shapes.
///
/// Fully overwrites `out`, including when `k == 0` (zeros).
///
/// # Panics
/// Panics if a slice length disagrees with `(m, k, n)` and the layout.
pub fn gemm_into(
    layout: Layout,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    gemm(layout, a, b, out, m, k, n, false);
}

/// `out += A x B` (accumulate into the caller's buffer). The existing
/// contents of `out` seed the in-order accumulation chain, which is the
/// gradient-accumulation pattern (`grad_weight += x^T · dy`) without a
/// temporary.
pub fn gemm_acc_into(
    layout: Layout,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    gemm(layout, a, b, out, m, k, n, true);
}

#[allow(clippy::too_many_arguments)]
fn gemm(
    layout: Layout,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    acc: bool,
) {
    let (a_len, b_len) = match layout {
        Layout::NN => (m * k, k * n),
        Layout::NT => (m * k, n * k),
        Layout::TN => (k * m, k * n),
    };
    assert_eq!(a.len(), a_len, "gemm {layout:?}: a length mismatch");
    assert_eq!(b.len(), b_len, "gemm {layout:?}: b length mismatch");
    assert_eq!(out.len(), m * n, "gemm {layout:?}: out length mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !acc {
            out.fill(0.0);
        }
        return;
    }

    let nblocks = m.div_ceil(MC);
    let base = out.as_mut_ptr() as usize;
    parallel::parallel_for(nblocks, MC.min(m) * k * n, |ib| {
        let i0 = ib * MC;
        let rows = MC.min(m - i0);
        // SAFETY: row blocks are disjoint (`ib` is executed exactly once),
        // and `out` outlives the blocking parallel_for call.
        let out_block =
            unsafe { std::slice::from_raw_parts_mut((base as *mut f32).add(i0 * n), rows * n) };
        gemm_row_block(layout, a, b, out_block, i0, rows, k, n, acc);
    });
}

/// Computes `rows` output rows starting at logical row `i0`.
#[allow(clippy::too_many_arguments)]
fn gemm_row_block(
    layout: Layout,
    a: &[f32],
    b: &[f32],
    out_block: &mut [f32],
    i0: usize,
    rows: usize,
    k: usize,
    n: usize,
    acc: bool,
) {
    PACK.with(|cell| {
        let mut pack = cell.borrow_mut();
        let (ap, bp) = &mut *pack;
        ap.resize(MC.div_ceil(MR) * MR * KC, 0.0);
        bp.resize(KC * NC.div_ceil(NR) * NR, 0.0);

        let mut kb = 0usize;
        let mut first = !acc;
        while kb < k {
            let kc = KC.min(k - kb);
            pack_a(layout, a, ap, i0, rows, kb, kc, k);
            let mut jb = 0usize;
            while jb < n {
                let nc = NC.min(n - jb);
                pack_b(layout, b, bp, kb, kc, jb, nc, k, n);
                macro_kernel(ap, bp, out_block, rows, kc, jb, nc, n, first);
                jb += nc;
            }
            kb += kc;
            first = false;
        }
    });
}

/// Packs the `rows x kc` A panel [`MR`] rows at a time, interleaved so the
/// micro-kernel reads one tile *column* per `k` step:
/// `ap[rp*kc*MR + p*MR + r] = A[i0 + rp*MR + r][kb + p]`, zero-padded past
/// `rows`. The pad rows feed accumulator lanes that are never stored.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    layout: Layout,
    a: &[f32],
    ap: &mut [f32],
    i0: usize,
    rows: usize,
    kb: usize,
    kc: usize,
    k: usize,
) {
    let npanels = rows.div_ceil(MR);
    for rp in 0..npanels {
        let rvalid = MR.min(rows - rp * MR);
        let panel = &mut ap[rp * kc * MR..(rp + 1) * kc * MR];
        if rvalid < MR {
            panel.fill(0.0);
        }
        match layout {
            // A stored row-major (m,k): scatter each row across the
            // interleaved columns.
            Layout::NN | Layout::NT => {
                for r in 0..rvalid {
                    let src = &a[(i0 + rp * MR + r) * k + kb..][..kc];
                    for (p, &v) in src.iter().enumerate() {
                        panel[p * MR + r] = v;
                    }
                }
            }
            // A = a^T with a stored (k,m): each tile column is a contiguous
            // run of `a`, one straight copy per `k` step.
            Layout::TN => {
                let m = a.len() / k;
                for (p, dst) in panel.chunks_exact_mut(MR).enumerate() {
                    let src = &a[(kb + p) * m + i0 + rp * MR..][..rvalid];
                    dst[..rvalid].copy_from_slice(src);
                }
            }
        }
    }
}

/// Packs the `kc x nc` B panel as NR-wide column slivers, `p`-major:
/// `bp[(s*kc + p)*NR + jj] = B[kb + p][jb + s*NR + jj]`, zero-padded past
/// `n`. The padding columns contribute only to discarded accumulator lanes.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    layout: Layout,
    b: &[f32],
    bp: &mut [f32],
    kb: usize,
    kc: usize,
    jb: usize,
    nc: usize,
    k: usize,
    n: usize,
) {
    let nslivers = nc.div_ceil(NR);
    match layout {
        // B stored row-major (k,n): read rows at stride 1, sliver by sliver.
        Layout::NN | Layout::TN => {
            for s in 0..nslivers {
                let j0 = jb + s * NR;
                let jw = NR.min(n - j0);
                let sliver = &mut bp[s * kc * NR..(s + 1) * kc * NR];
                for p in 0..kc {
                    let src = &b[(kb + p) * n + j0..(kb + p) * n + j0 + jw];
                    let dst = &mut sliver[p * NR..p * NR + NR];
                    dst[..jw].copy_from_slice(src);
                    dst[jw..].fill(0.0);
                }
            }
        }
        // B = b^T with b stored (n,k): each output column is a row of `b`,
        // contiguous in p.
        Layout::NT => {
            for s in 0..nslivers {
                let j0 = jb + s * NR;
                let jw = NR.min(n - j0);
                let sliver = &mut bp[s * kc * NR..(s + 1) * kc * NR];
                for jj in 0..NR {
                    if jj < jw {
                        let src = &b[(j0 + jj) * k + kb..(j0 + jj) * k + kb + kc];
                        for (p, &v) in src.iter().enumerate() {
                            sliver[p * NR + jj] = v;
                        }
                    } else {
                        for p in 0..kc {
                            sliver[p * NR + jj] = 0.0;
                        }
                    }
                }
            }
        }
    }
}

/// Runs the register-tiled micro-kernels over one packed (A block, B block)
/// pair, updating `out_block` columns `jb..jb+nc`.
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    ap: &[f32],
    bp: &[f32],
    out_block: &mut [f32],
    rows: usize,
    kc: usize,
    jb: usize,
    nc: usize,
    n: usize,
    first: bool,
) {
    let nslivers = nc.div_ceil(NR);
    let npanels = rows.div_ceil(MR);
    for s in 0..nslivers {
        let sliver = &bp[s * kc * NR..(s + 1) * kc * NR];
        let j0 = jb + s * NR;
        let jw = NR.min(jb + nc - j0);
        for rp in 0..npanels {
            let rvalid = MR.min(rows - rp * MR);
            micro_mr(
                &ap[rp * kc * MR..(rp + 1) * kc * MR],
                sliver,
                out_block,
                rp * MR,
                rvalid,
                j0,
                jw,
                n,
                first,
            );
        }
    }
}

/// 8x8 register tile: `out[r0..r0+rvalid][j0..j0+jw] (+)= A-panel · B-sliver`.
///
/// `apanel` is [`MR`]-interleaved (`apanel[p*MR + r]`, see [`pack_a`]) and
/// zero-padded past `rvalid`; `sliver` is zero-padded past `jw`. Pad rows
/// and pad lanes accumulate but are never loaded from or stored to `out`.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn micro_mr(
    apanel: &[f32],
    sliver: &[f32],
    out: &mut [f32],
    r0: usize,
    rvalid: usize,
    j0: usize,
    jw: usize,
    n: usize,
    first: bool,
) {
    let mut acc = [[0.0f32; NR]; MR];
    if !first {
        for (r, accr) in acc.iter_mut().enumerate().take(rvalid) {
            let orow = &out[(r0 + r) * n + j0..(r0 + r) * n + j0 + jw];
            accr[..jw].copy_from_slice(orow);
        }
    }
    inner_k_loop(apanel, sliver, &mut acc);
    for (r, accr) in acc.iter().enumerate().take(rvalid) {
        let orow = &mut out[(r0 + r) * n + j0..(r0 + r) * n + j0 + jw];
        orow.copy_from_slice(&accr[..jw]);
    }
}

/// The `k` loop of the micro-kernel: `acc[r][jj] <- fma(apanel[p*MR+r],
/// sliver[p*NR+jj], acc[r][jj])` for `p` ascending. Portable scalar
/// version; the x86-64 FMA build replaces it with an intrinsics twin that
/// performs the *identical* chain of fused operations (`_mm256_fmadd_ps`
/// is `f32::mul_add` per lane), so results are bitwise equal across both.
#[cfg(not(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma"
)))]
#[inline(always)]
fn inner_k_loop(apanel: &[f32], sliver: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (avals, bv) in apanel.chunks_exact(MR).zip(sliver.chunks_exact(NR)) {
        for r in 0..MR {
            let ar = avals[r];
            let accr = &mut acc[r];
            for jj in 0..NR {
                accr[jj] = ar.mul_add(bv[jj], accr[jj]);
            }
        }
    }
}

/// AVX2+FMA twin of the scalar `k` loop: 8 ymm accumulators (two per row),
/// one broadcast + two fused multiply-adds per packed A element. Enabled
/// at compile time (the workspace builds with `target-cpu=native`).
#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma",
    not(target_feature = "avx512f")
))]
#[inline(always)]
fn inner_k_loop(apanel: &[f32], sliver: &[f32], acc: &mut [[f32; NR]; MR]) {
    use std::arch::x86_64::*;
    let kc = apanel.len() / MR;
    debug_assert_eq!(sliver.len(), kc * NR);
    // SAFETY: all pointer arithmetic stays inside `apanel` (kc*MR elements),
    // `sliver` (kc*NR elements) and `acc` (MR*NR elements); AVX2/FMA are
    // compile-time-required by the cfg gate above.
    unsafe {
        let mut vacc = [[_mm256_setzero_ps(); 2]; MR];
        for (r, accr) in acc.iter().enumerate() {
            vacc[r][0] = _mm256_loadu_ps(accr.as_ptr());
            vacc[r][1] = _mm256_loadu_ps(accr.as_ptr().add(8));
        }
        let mut ap = apanel.as_ptr();
        let mut bp = sliver.as_ptr();
        for _ in 0..kc {
            let b0 = _mm256_loadu_ps(bp);
            let b1 = _mm256_loadu_ps(bp.add(8));
            for (r, vr) in vacc.iter_mut().enumerate() {
                let ar = _mm256_broadcast_ss(&*ap.add(r));
                vr[0] = _mm256_fmadd_ps(ar, b0, vr[0]);
                vr[1] = _mm256_fmadd_ps(ar, b1, vr[1]);
            }
            ap = ap.add(MR);
            bp = bp.add(NR);
        }
        for (r, accr) in acc.iter_mut().enumerate() {
            _mm256_storeu_ps(accr.as_mut_ptr(), vacc[r][0]);
            _mm256_storeu_ps(accr.as_mut_ptr().add(8), vacc[r][1]);
        }
    }
}

/// AVX-512 twin of the scalar `k` loop: 8 zmm accumulators (one [`NR`] = 16
/// wide register per row), one broadcast + one fused multiply-add per
/// packed A element — same fused operation chain, so bitwise-equal output.
#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
#[inline(always)]
fn inner_k_loop(apanel: &[f32], sliver: &[f32], acc: &mut [[f32; NR]; MR]) {
    use std::arch::x86_64::*;
    let kc = apanel.len() / MR;
    debug_assert_eq!(sliver.len(), kc * NR);
    // SAFETY: all pointer arithmetic stays inside `apanel` (kc*MR elements),
    // `sliver` (kc*NR elements) and `acc` (MR*NR elements); AVX-512 is
    // compile-time-required by the cfg gate above.
    unsafe {
        let mut vacc = [_mm512_setzero_ps(); MR];
        for (r, accr) in acc.iter().enumerate() {
            vacc[r] = _mm512_loadu_ps(accr.as_ptr());
        }
        let mut ap = apanel.as_ptr();
        let mut bp = sliver.as_ptr();
        for _ in 0..kc {
            let b0 = _mm512_loadu_ps(bp);
            for (r, vr) in vacc.iter_mut().enumerate() {
                let ar = _mm512_set1_ps(*ap.add(r));
                *vr = _mm512_fmadd_ps(ar, b0, *vr);
            }
            ap = ap.add(MR);
            bp = bp.add(NR);
        }
        for (r, accr) in acc.iter_mut().enumerate() {
            _mm512_storeu_ps(accr.as_mut_ptr(), vacc[r]);
        }
    }
}

/// The unblocked in-order reference implementation the packed kernel must
/// match **bitwise**. Used by the property tests and the bench baseline;
/// do not "optimize" it — its accumulation chain (`mul_add` over `k` in
/// ascending order) *is* the spec.
pub fn naive_gemm(layout: Layout, a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0f32;
            for p in 0..k {
                let av = match layout {
                    Layout::NN | Layout::NT => a[i * k + p],
                    Layout::TN => a[p * m + i],
                };
                let bv = match layout {
                    Layout::NN | Layout::TN => b[p * n + j],
                    Layout::NT => b[j * k + p],
                };
                s = av.mul_add(bv, s);
            }
            out[i * n + j] = s;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn randv(len: usize, rng: &mut Rng64) -> Vec<f32> {
        (0..len).map(|_| rng.normal()).collect()
    }

    fn check_bitwise(layout: Layout, m: usize, k: usize, n: usize, seed: u64) {
        let mut rng = Rng64::seed_from_u64(seed);
        let (a_len, b_len) = match layout {
            Layout::NN => (m * k, k * n),
            Layout::NT => (m * k, n * k),
            Layout::TN => (k * m, k * n),
        };
        let a = randv(a_len, &mut rng);
        let b = randv(b_len, &mut rng);
        let mut out = vec![f32::NAN; m * n]; // must be fully overwritten
        gemm_into(layout, &a, &b, &mut out, m, k, n);
        let want = naive_gemm(layout, &a, &b, m, k, n);
        for (i, (x, y)) in out.iter().zip(&want).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{layout:?} ({m},{k},{n}) element {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn bitwise_matches_naive_across_edges() {
        // Hits every edge: tile-exact, sub-tile, row/col remainders,
        // multi-KC, multi-NC, multi-MC.
        for (i, &(m, k, n)) in [
            (1, 1, 1),
            (4, 8, 8),
            (5, 7, 9),
            (3, 300, 11),
            (33, 17, 40),
            (64, 64, 64),
            (37, 257, 261),
            (70, 300, 300),
        ]
        .iter()
        .enumerate()
        {
            for layout in [Layout::NN, Layout::NT, Layout::TN] {
                check_bitwise(layout, m, k, n, 100 + i as u64);
            }
        }
    }

    #[test]
    fn acc_seeds_from_existing_output() {
        let mut rng = Rng64::seed_from_u64(9);
        let (m, k, n) = (5, 13, 7);
        let a = randv(m * k, &mut rng);
        let b = randv(k * n, &mut rng);
        let seed_out = randv(m * n, &mut rng);
        let mut out = seed_out.clone();
        gemm_acc_into(Layout::NN, &a, &b, &mut out, m, k, n);
        // Reference: in-order accumulation starting from the seed value.
        for i in 0..m {
            for j in 0..n {
                let mut s = seed_out[i * n + j];
                for p in 0..k {
                    s = a[i * k + p].mul_add(b[p * n + j], s);
                }
                assert_eq!(s.to_bits(), out[i * n + j].to_bits());
            }
        }
    }

    #[test]
    fn zero_k_overwrites_or_preserves() {
        let mut out = vec![3.0f32; 6];
        gemm_into(Layout::NN, &[], &[], &mut out, 2, 0, 3);
        assert!(out.iter().all(|&v| v == 0.0));
        let mut out = vec![3.0f32; 6];
        gemm_acc_into(Layout::NN, &[], &[], &mut out, 2, 0, 3);
        assert!(out.iter().all(|&v| v == 3.0));
    }

    #[test]
    fn zero_m_or_n_is_a_noop() {
        let mut out: Vec<f32> = Vec::new();
        gemm_into(Layout::NN, &[], &[1.0, 2.0, 3.0, 4.0], &mut out, 0, 2, 2);
        gemm_into(Layout::NN, &[1.0, 2.0, 3.0, 4.0], &[], &mut out, 2, 2, 0);
        gemm_into(Layout::NT, &[], &[], &mut out, 0, 0, 0);
    }
}
