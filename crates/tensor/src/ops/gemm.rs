//! The packed, cache-blocked GEMM micro-kernel every dense multiply in the
//! workspace runs on: `matmul`, `matmul_nt`, `matmul_tn` and the implicit
//! im2col GEMMs inside `conv2d` / `conv_transpose2d` all lower to
//! [`gemm_into`] / [`gemm_acc_into`] with a [`Layout`] tag, or to the
//! `pub(crate)` [`gemm_with`] / [`gemm_scatter`] drivers with a custom
//! [`PackRhs`] operand.
//!
//! # Structure
//!
//! The kernel follows the classic three-level blocking of high-performance
//! BLAS (Goto-style), sized for this crate's GAN workloads:
//!
//! * the output is cut into row blocks of [`MC`] rows and column panels of
//!   [`NC`] columns — the (row block × column panel) grid is the unit of
//!   parallelism, so wide shapes (large `n`, small `m` — the generator's
//!   batched forward) fan out even when there are few row blocks;
//! * the shared `k` dimension is cut into panels of [`KC`] — the packed
//!   A panel (`MC x KC`, 32 KiB) stays L1/L2-resident while it is reused
//!   across the whole `n` extent;
//! * the packed B panel (`KC x NC`, 256 KiB) stays L2-resident while every
//!   row of the A panels streams over it.
//!
//! # Shared packing
//!
//! For each `k` panel, **every A row panel and every B column panel is
//! packed exactly once** into a shared, workspace-pool-backed buffer
//! (one fixed slot per panel index), by a parallel pack phase; the compute
//! grid then consumes the shared panels cooperatively. The old schedule
//! packed B into thread-local scratch per row block, so with `T` threads
//! the same B bytes were packed up to `ceil(m/MC)` times and memory
//! bandwidth capped scaling. A panels are [`MR`]-interleaved row panels
//! (one tile *column* per `k` step), B panels are column *slivers* of
//! [`NR`] = 16 columns laid out `p`-major, so the innermost loop reads both
//! operands at stride 1 regardless of the logical [`Layout`].
//!
//! The B-side pack is abstracted behind [`PackRhs`]: the dense slice
//! packer ([`SliceRhs`]) is one implementation; `conv.rs` provides im2col
//! packers that materialize convolution patches *on the fly* straight into
//! the packed sliver format (implicit GEMM — the full column matrix never
//! exists in memory).
//!
//! The micro-kernel computes an [`MR`]`x`[`NR`] register tile: 8 vector
//! accumulators (AVX2 ymm) with one broadcast fused multiply-add per
//! operand element — no loads or stores of the output inside the `k` loop,
//! and eight independent accumulation chains to hide the FMA latency. On
//! x86-64 with FMA the inner loop is hand-written with `core::arch`
//! intrinsics (the exact same operation chain, see below); elsewhere a
//! scalar `mul_add` loop compiles to the equivalent fused code.
//!
//! # Determinism
//!
//! Every output element is accumulated over `k` **in ascending order, one
//! [`f32::mul_add`] per step** (fused, single rounding — the FMA unit is
//! where half the machine's FLOP/s live):
//!
//! * k-panels are visited in ascending order (the `kb` loop is the serial
//!   outer loop; the barrier after each compute grid enforces in-order
//!   resume), and each panel resumes from the partial sum of the previous
//!   one, so the chain of fused multiply-adds for a given element is
//!   identical to an unblocked in-order loop — the packed kernel is
//!   **bitwise identical to the naive reference** ([`naive_gemm`], which
//!   uses the same `mul_add` chain; no reassociation anywhere);
//! * grid cells are fixed-size ([`MC`]`x`[`NC`]) and each is computed
//!   entirely by one task, so the split — and therefore every intermediate
//!   rounding — is independent of `TENSOR_THREADS`. Packed panels hold the
//!   same bytes no matter which slot packs them. Results are bitwise
//!   identical for any thread count, preserving the repo's determinism
//!   contract.
//!
//! There is deliberately **no zero-skip branch** (the old kernel's
//! `if av == 0.0 { continue }`): it blocked vectorization of the inner
//! loop and silently dropped `0.0 * NaN` / `0.0 * inf` contributions, so
//! NaNs now propagate exactly as IEEE 754 (and the naive reference) say
//! they must.
//!
//! # Allocation
//!
//! Packing buffers come from [`crate::workspace::take_uninit`] — one
//! buffer of `ceil(m/MC)` A slots and one of `ceil(n/NC)` B slots per
//! call, recycled on return. After warmup every take is a pool hit
//! (no memset, no malloc), so steady-state GEMM calls still perform zero
//! heap allocation — now measurable through the `ws_misses` counter
//! instead of hidden in thread-local statics. Output buffers are the
//! caller's business — the tensor-level wrappers draw them from
//! [`crate::workspace`].

use crate::parallel;
use crate::workspace;

/// Rows per parallel row block (the packed A panel is `MC x KC`).
pub const MC: usize = 32;
/// Shared-dimension panel length.
pub const KC: usize = 256;
/// Column panel width (the packed B panel is `KC x NC`).
pub const NC: usize = 256;
/// Register-tile width: columns per packed B sliver (two 8-wide vector
/// registers per row on AVX2).
pub const NR: usize = 16;
/// Register-tile height: rows per micro-kernel invocation, chosen so the
/// tile holds 8 vector accumulators — eight independent fused-multiply-add
/// dependency chains, enough to cover the FMA latency on current cores:
/// 8x16 on AVX-512 (one zmm per row), 4x16 elsewhere (two ymm per row).
/// The tile shape never affects results — every output element's
/// accumulation chain is fixed by the `k` order alone.
#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
pub const MR: usize = 8;
/// Register-tile height (non-AVX-512 builds): see above.
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx512f")))]
pub const MR: usize = 4;

/// Storage layout of a GEMM's operands. The logical product is always
/// `A (m,k) x B (k,n) -> out (m,n)`; the tag says how the operand slices
/// are laid out in memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layout {
    /// `a` is row-major `(m,k)`, `b` is row-major `(k,n)`.
    NN,
    /// `a` is row-major `(m,k)`, `b` is row-major `(n,k)` (i.e. `B = b^T`).
    NT,
    /// `a` is row-major `(k,m)` (i.e. `A = a^T`), `b` is row-major `(k,n)`.
    TN,
}

/// The left operand of the packed drivers: a dense slice plus its storage
/// order. The logical A is always `(m, k)`.
#[derive(Clone, Copy)]
pub(crate) enum Lhs<'a> {
    /// Stored row-major `(m, k)`.
    RowMajor(&'a [f32]),
    /// Stored row-major `(k, m)` — the logical A is the transpose. This is
    /// how `w^T · x` products run without materializing the transpose: the
    /// packer reads the `(k, m)` slice directly.
    ColMajor(&'a [f32]),
}

/// A right-hand operand that can pack any `kc x nc` panel of the logical
/// `(k, n)` B matrix into the sliver format [`macro_kernel`] consumes
/// (see [`SliceRhs::pack_panel`] for the exact layout).
///
/// Implementations must be pure functions of `(kb, kc, jb, nc)` — the same
/// panel must pack to the same bytes no matter which thread or call packs
/// it, which is what keeps the shared-panel schedule bitwise deterministic.
/// `conv.rs` implements this trait for on-the-fly im2col patch extraction
/// (implicit GEMM).
pub(crate) trait PackRhs: Sync {
    /// Packs the `kc x nc` panel at `(kb, jb)` into `bp`, which holds
    /// exactly `nc.div_ceil(NR) * NR * kc` elements with **arbitrary**
    /// prior contents: every element, including the zero pad past `nc`,
    /// must be written.
    fn pack_panel(&self, bp: &mut [f32], kb: usize, kc: usize, jb: usize, nc: usize);
}

/// Dense-slice [`PackRhs`]: the B operand of the `matmul` family.
pub(crate) struct SliceRhs<'a> {
    b: &'a [f32],
    /// `false`: `b` is row-major `(k, n)`; `true`: `b` is row-major
    /// `(n, k)` and the logical B is its transpose.
    transposed: bool,
    k: usize,
    n: usize,
}

impl<'a> SliceRhs<'a> {
    pub(crate) fn new(b: &'a [f32], transposed: bool, k: usize, n: usize) -> Self {
        assert_eq!(b.len(), k * n, "SliceRhs: b length mismatch");
        SliceRhs {
            b,
            transposed,
            k,
            n,
        }
    }
}

impl PackRhs for SliceRhs<'_> {
    /// Packs as NR-wide column slivers, `p`-major:
    /// `bp[(s*kc + p)*NR + jj] = B[kb + p][jb + s*NR + jj]`, zero-padded
    /// past `n`. The padding columns contribute only to discarded
    /// accumulator lanes.
    fn pack_panel(&self, bp: &mut [f32], kb: usize, kc: usize, jb: usize, nc: usize) {
        let n = self.n;
        let b = self.b;
        let nslivers = nc.div_ceil(NR);
        if !self.transposed {
            // B stored row-major (k,n): read rows at stride 1, sliver by
            // sliver.
            for s in 0..nslivers {
                let j0 = jb + s * NR;
                let jw = NR.min(n - j0);
                let sliver = &mut bp[s * kc * NR..(s + 1) * kc * NR];
                for p in 0..kc {
                    let src = &b[(kb + p) * n + j0..(kb + p) * n + j0 + jw];
                    let dst = &mut sliver[p * NR..p * NR + NR];
                    dst[..jw].copy_from_slice(src);
                    dst[jw..].fill(0.0);
                }
            }
        } else {
            // B = b^T with b stored (n,k): each output column is a row of
            // `b`, contiguous in p.
            let k = self.k;
            for s in 0..nslivers {
                let j0 = jb + s * NR;
                let jw = NR.min(n - j0);
                let sliver = &mut bp[s * kc * NR..(s + 1) * kc * NR];
                for jj in 0..NR {
                    if jj < jw {
                        let src = &b[(j0 + jj) * k + kb..(j0 + jj) * k + kb + kc];
                        for (p, &v) in src.iter().enumerate() {
                            sliver[p * NR + jj] = v;
                        }
                    } else {
                        for p in 0..kc {
                            sliver[p * NR + jj] = 0.0;
                        }
                    }
                }
            }
        }
    }
}

/// `out = A x B` (overwrite). See [`Layout`] for operand shapes.
///
/// Fully overwrites `out`, including when `k == 0` (zeros).
///
/// # Panics
/// Panics if a slice length disagrees with `(m, k, n)` and the layout.
pub fn gemm_into(
    layout: Layout,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    gemm(layout, a, b, out, m, k, n, false);
}

/// `out += A x B` (accumulate into the caller's buffer). The existing
/// contents of `out` seed the in-order accumulation chain, which is the
/// gradient-accumulation pattern (`grad_weight += x^T · dy`) without a
/// temporary.
pub fn gemm_acc_into(
    layout: Layout,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    gemm(layout, a, b, out, m, k, n, true);
}

#[allow(clippy::too_many_arguments)]
fn gemm(
    layout: Layout,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    acc: bool,
) {
    let a_len = match layout {
        Layout::NN | Layout::NT => m * k,
        Layout::TN => k * m,
    };
    let b_len = match layout {
        Layout::NN | Layout::TN => k * n,
        Layout::NT => n * k,
    };
    assert_eq!(a.len(), a_len, "gemm {layout:?}: a length mismatch");
    assert_eq!(b.len(), b_len, "gemm {layout:?}: b length mismatch");
    assert_eq!(out.len(), m * n, "gemm {layout:?}: out length mismatch");
    let lhs = match layout {
        Layout::NN | Layout::NT => Lhs::RowMajor(a),
        Layout::TN => Lhs::ColMajor(a),
    };
    let rhs = SliceRhs::new(b, matches!(layout, Layout::NT), k, n);
    gemm_with(lhs, &rhs, out, m, k, n, acc);
}

/// The shared-panel GEMM driver: `out (+)= A x B` with the B operand
/// supplied by any [`PackRhs`].
///
/// Schedule (per `k` panel, `kb` ascending — the serial outer loop):
/// 1. a parallel **pack phase** writes every A row panel and every B
///    column panel exactly once into its fixed slot of the shared,
///    workspace-backed buffers (task `t < nib` packs A panel `t`, task
///    `nib + j` packs B panel `j`);
/// 2. a parallel **compute grid** over (row block × column panel) cells
///    consumes the shared panels; each cell updates a disjoint
///    `MC x NC` region of `out` and accumulates `k` in ascending order.
///
/// Both phases share one serial/parallel decision (gate ≈ `m*k*n` against
/// [`parallel::PAR_THRESHOLD`]), and neither the slot assignment nor the
/// thread count affects any output element's operation chain — output is
/// bitwise identical to [`naive_gemm`] for every `TENSOR_THREADS`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_with<R: PackRhs>(
    lhs: Lhs<'_>,
    rhs: &R,
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    acc: bool,
) {
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !acc {
            out.fill(0.0);
        }
        return;
    }

    let nib = m.div_ceil(MC);
    let njb = n.div_ceil(NC);
    let kc_max = KC.min(k);
    let a_slot = MC.div_ceil(MR) * MR * kc_max;
    let b_slot = NC.div_ceil(NR) * NR * kc_max;
    let mut ap = workspace::take_uninit(nib * a_slot);
    let mut bp = workspace::take_uninit(njb * b_slot);
    let ap_addr = ap.as_mut_ptr() as usize;
    let bp_addr = bp.as_mut_ptr() as usize;
    let out_addr = out.as_mut_ptr() as usize;

    // One consistent serial/parallel gate for both phases: total work is
    // ~m*k*n fused multiply-adds, so the per-task hints below make each
    // phase's `tasks * hint` product land on that same total. The old
    // per-row-block hint (`MC.min(m) * k * n`) overstated per-block work
    // by `n/NC` for multi-panel shapes.
    let total = m.saturating_mul(k).saturating_mul(n);
    let pack_hint = (total / (nib + njb)).max(1);
    let cell_hint = (total / (nib * njb)).max(1);

    let mut kb = 0usize;
    let mut first = !acc;
    while kb < k {
        let kc = KC.min(k - kb);
        parallel::parallel_for(nib + njb, pack_hint, |t| {
            if t < nib {
                let i0 = t * MC;
                let rows = MC.min(m - i0);
                // SAFETY: slot `t` is written by task `t` alone (each index
                // runs exactly once), and `ap` outlives the blocking call.
                let slot = unsafe {
                    std::slice::from_raw_parts_mut(
                        (ap_addr as *mut f32).add(t * a_slot),
                        rows.div_ceil(MR) * MR * kc,
                    )
                };
                pack_a(lhs, slot, i0, rows, kb, kc, k, m);
            } else {
                let jp = t - nib;
                let j0 = jp * NC;
                let nc = NC.min(n - j0);
                // SAFETY: as above for B slot `jp`.
                let slot = unsafe {
                    std::slice::from_raw_parts_mut(
                        (bp_addr as *mut f32).add(jp * b_slot),
                        nc.div_ceil(NR) * NR * kc,
                    )
                };
                rhs.pack_panel(slot, kb, kc, j0, nc);
            }
        });
        parallel::parallel_for_grid(nib, njb, cell_hint, |ib, jp| {
            let i0 = ib * MC;
            let rows = MC.min(m - i0);
            let j0 = jp * NC;
            let nc = NC.min(n - j0);
            // SAFETY: the pack phase above is a barrier, so the panels are
            // fully written; they are only read from here on.
            let apanel = unsafe {
                std::slice::from_raw_parts(
                    (ap_addr as *const f32).add(ib * a_slot),
                    rows.div_ceil(MR) * MR * kc,
                )
            };
            let bpanel = unsafe {
                std::slice::from_raw_parts(
                    (bp_addr as *const f32).add(jp * b_slot),
                    nc.div_ceil(NR) * NR * kc,
                )
            };
            // SAFETY: grid cells update disjoint (row, column-range)
            // segments of `out`, and `out` outlives the blocking call.
            macro_kernel(
                apanel,
                bpanel,
                out_addr as *mut f32,
                i0,
                rows,
                kc,
                j0,
                nc,
                n,
                first,
            );
        });
        kb += kc;
        first = false;
    }
    workspace::recycle(ap);
    workspace::recycle(bp);
}

/// Fused-epilogue GEMM: computes `A x B` row block by row block and hands
/// each finished `rows x n` tile to `scatter(tile, i0, rows)` **in
/// ascending row order** instead of storing a full `(m, n)` product. This
/// is the implicit col2im driver: `conv_transpose2d` and conv's
/// grad-input path scatter each tile straight into the output image, so
/// the full column matrix never exists in memory.
///
/// Every B panel is packed exactly once up front (all `k` panels); each
/// row block then packs its A panels and accumulates `k` in ascending
/// order into a shared tile, parallelizing over column panels (disjoint
/// tile columns). The scatter itself runs serially in ascending row-block
/// order, so a scatter that accumulates (`+=`) element-wise in ascending
/// `(row, column)` order is bitwise identical to materializing the whole
/// product and scattering it afterwards.
///
/// `k == 0` (an all-zero product) skips the scatter entirely: both conv
/// callers scatter into freshly zeroed images, where `+= 0.0` is a no-op.
pub(crate) fn gemm_scatter<R: PackRhs>(
    lhs: Lhs<'_>,
    rhs: &R,
    m: usize,
    k: usize,
    n: usize,
    mut scatter: impl FnMut(&[f32], usize, usize),
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let nib = m.div_ceil(MC);
    let njb = n.div_ceil(NC);
    let nkb = k.div_ceil(KC);
    let kc_max = KC.min(k);
    let a_slot = MC.div_ceil(MR) * MR * kc_max;
    let b_slot = NC.div_ceil(NR) * NR * kc_max;

    let mut bp = workspace::take_uninit(nkb * njb * b_slot);
    let bp_addr = bp.as_mut_ptr() as usize;
    let total = m.saturating_mul(k).saturating_mul(n);
    let pack_hint = (total / (nkb * njb)).max(1);
    parallel::parallel_for_grid(nkb, njb, pack_hint, |kp, jp| {
        let kb = kp * KC;
        let kc = KC.min(k - kb);
        let j0 = jp * NC;
        let nc = NC.min(n - j0);
        // SAFETY: slot `(kp, jp)` is written by its own task alone, and
        // `bp` outlives the blocking call.
        let slot = unsafe {
            std::slice::from_raw_parts_mut(
                (bp_addr as *mut f32).add((kp * njb + jp) * b_slot),
                nc.div_ceil(NR) * NR * kc,
            )
        };
        rhs.pack_panel(slot, kb, kc, j0, nc);
    });

    let mut ap = workspace::take_uninit(nkb * a_slot);
    let ap_addr = ap.as_mut_ptr() as usize;
    let mut tile = workspace::take_uninit(MC.min(m) * n);
    let tile_addr = tile.as_mut_ptr() as usize;
    // Per column panel of one row block: rows * k * nc fused multiply-adds.
    let jb_hint = MC.min(m).saturating_mul(k).saturating_mul(NC.min(n)).max(1);
    for ib in 0..nib {
        let i0 = ib * MC;
        let rows = MC.min(m - i0);
        for kp in 0..nkb {
            let kb = kp * KC;
            let kc = KC.min(k - kb);
            let slot = &mut ap[kp * a_slot..kp * a_slot + rows.div_ceil(MR) * MR * kc];
            pack_a(lhs, slot, i0, rows, kb, kc, k, m);
        }
        parallel::parallel_for(njb, jb_hint, |jp| {
            let j0 = jp * NC;
            let nc = NC.min(n - j0);
            for kp in 0..nkb {
                let kb = kp * KC;
                let kc = KC.min(k - kb);
                // SAFETY: panels were fully written above (barriers); tasks
                // write disjoint column ranges of the shared tile, which
                // outlives the blocking call.
                let apanel = unsafe {
                    std::slice::from_raw_parts(
                        (ap_addr as *const f32).add(kp * a_slot),
                        rows.div_ceil(MR) * MR * kc,
                    )
                };
                let bpanel = unsafe {
                    std::slice::from_raw_parts(
                        (bp_addr as *const f32).add((kp * njb + jp) * b_slot),
                        nc.div_ceil(NR) * NR * kc,
                    )
                };
                macro_kernel(
                    apanel,
                    bpanel,
                    tile_addr as *mut f32,
                    0,
                    rows,
                    kc,
                    j0,
                    nc,
                    n,
                    kp == 0,
                );
            }
        });
        scatter(&tile[..rows * n], i0, rows);
    }
    workspace::recycle(tile);
    workspace::recycle(ap);
    workspace::recycle(bp);
}

/// Packs the `rows x kc` A panel [`MR`] rows at a time, interleaved so the
/// micro-kernel reads one tile *column* per `k` step:
/// `ap[rp*kc*MR + p*MR + r] = A[i0 + rp*MR + r][kb + p]`, zero-padded past
/// `rows`. The pad rows feed accumulator lanes that are never stored.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    lhs: Lhs<'_>,
    ap: &mut [f32],
    i0: usize,
    rows: usize,
    kb: usize,
    kc: usize,
    k: usize,
    m: usize,
) {
    let npanels = rows.div_ceil(MR);
    for rp in 0..npanels {
        let rvalid = MR.min(rows - rp * MR);
        let panel = &mut ap[rp * kc * MR..(rp + 1) * kc * MR];
        if rvalid < MR {
            panel.fill(0.0);
        }
        match lhs {
            // A stored row-major (m,k): scatter each row across the
            // interleaved columns.
            Lhs::RowMajor(a) => {
                for r in 0..rvalid {
                    let src = &a[(i0 + rp * MR + r) * k + kb..][..kc];
                    for (p, &v) in src.iter().enumerate() {
                        panel[p * MR + r] = v;
                    }
                }
            }
            // A = a^T with a stored (k,m): each tile column is a contiguous
            // run of `a`, one straight copy per `k` step.
            Lhs::ColMajor(a) => {
                for (p, dst) in panel.chunks_exact_mut(MR).enumerate() {
                    let src = &a[(kb + p) * m + i0 + rp * MR..][..rvalid];
                    dst[..rvalid].copy_from_slice(src);
                }
            }
        }
    }
}

/// Runs the register-tiled micro-kernels over one packed (A panel, B panel)
/// pair, updating rows `i0..i0+rows`, columns `jb..jb+nc` of the row-major
/// `(_, n)` matrix at `out`.
///
/// `out` is a raw base pointer because concurrent grid cells of the same
/// row block write disjoint *column ranges* of the same rows — overlapping
/// `&mut` slices would be UB even with disjoint writes, so each micro tile
/// materializes exactly the `(row, j0..j0+jw)` segments it owns.
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    ap: &[f32],
    bp: &[f32],
    out: *mut f32,
    i0: usize,
    rows: usize,
    kc: usize,
    jb: usize,
    nc: usize,
    n: usize,
    first: bool,
) {
    let nslivers = nc.div_ceil(NR);
    let npanels = rows.div_ceil(MR);
    for s in 0..nslivers {
        let sliver = &bp[s * kc * NR..(s + 1) * kc * NR];
        let j0 = jb + s * NR;
        let jw = NR.min(jb + nc - j0);
        for rp in 0..npanels {
            let rvalid = MR.min(rows - rp * MR);
            // SAFETY: rows `i0..i0+rows`, columns `j0..j0+jw` are inside
            // the output matrix and owned exclusively by this grid cell
            // (see the callers' scheduling contracts).
            unsafe {
                micro_mr(
                    &ap[rp * kc * MR..(rp + 1) * kc * MR],
                    sliver,
                    out,
                    i0 + rp * MR,
                    rvalid,
                    j0,
                    jw,
                    n,
                    first,
                );
            }
        }
    }
}

/// Register tile: `out[r0..r0+rvalid][j0..j0+jw] (+)= A-panel · B-sliver`.
///
/// `apanel` is [`MR`]-interleaved (`apanel[p*MR + r]`, see [`pack_a`]) and
/// zero-padded past `rvalid`; `sliver` is zero-padded past `jw`. Pad rows
/// and pad lanes accumulate but are never loaded from or stored to `out`.
///
/// # Safety
/// The caller must guarantee that rows `r0..r0+rvalid` crossed with
/// columns `j0..j0+jw` of the row-major matrix at `out` (row stride `n`)
/// are in bounds and not accessed by any other thread for the duration of
/// the call.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
unsafe fn micro_mr(
    apanel: &[f32],
    sliver: &[f32],
    out: *mut f32,
    r0: usize,
    rvalid: usize,
    j0: usize,
    jw: usize,
    n: usize,
    first: bool,
) {
    let mut acc = [[0.0f32; NR]; MR];
    if !first {
        for (r, accr) in acc.iter_mut().enumerate().take(rvalid) {
            // SAFETY: per the function contract, this row segment is in
            // bounds and exclusively ours.
            let orow = unsafe { std::slice::from_raw_parts(out.add((r0 + r) * n + j0), jw) };
            accr[..jw].copy_from_slice(orow);
        }
    }
    inner_k_loop(apanel, sliver, &mut acc);
    for (r, accr) in acc.iter().enumerate().take(rvalid) {
        // SAFETY: as above.
        let orow = unsafe { std::slice::from_raw_parts_mut(out.add((r0 + r) * n + j0), jw) };
        orow.copy_from_slice(&accr[..jw]);
    }
}

/// The `k` loop of the micro-kernel: `acc[r][jj] <- fma(apanel[p*MR+r],
/// sliver[p*NR+jj], acc[r][jj])` for `p` ascending. Portable scalar
/// version; the x86-64 FMA build replaces it with an intrinsics twin that
/// performs the *identical* chain of fused operations (`_mm256_fmadd_ps`
/// is `f32::mul_add` per lane), so results are bitwise equal across both.
#[cfg(not(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma"
)))]
#[inline(always)]
fn inner_k_loop(apanel: &[f32], sliver: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (avals, bv) in apanel.chunks_exact(MR).zip(sliver.chunks_exact(NR)) {
        for r in 0..MR {
            let ar = avals[r];
            let accr = &mut acc[r];
            for jj in 0..NR {
                accr[jj] = ar.mul_add(bv[jj], accr[jj]);
            }
        }
    }
}

/// AVX2+FMA twin of the scalar `k` loop: 8 ymm accumulators (two per row),
/// one broadcast + two fused multiply-adds per packed A element. Enabled
/// at compile time (the workspace builds with `target-cpu=native`).
#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma",
    not(target_feature = "avx512f")
))]
#[inline(always)]
fn inner_k_loop(apanel: &[f32], sliver: &[f32], acc: &mut [[f32; NR]; MR]) {
    use std::arch::x86_64::*;
    let kc = apanel.len() / MR;
    debug_assert_eq!(sliver.len(), kc * NR);
    // SAFETY: all pointer arithmetic stays inside `apanel` (kc*MR elements),
    // `sliver` (kc*NR elements) and `acc` (MR*NR elements); AVX2/FMA are
    // compile-time-required by the cfg gate above.
    unsafe {
        let mut vacc = [[_mm256_setzero_ps(); 2]; MR];
        for (r, accr) in acc.iter().enumerate() {
            vacc[r][0] = _mm256_loadu_ps(accr.as_ptr());
            vacc[r][1] = _mm256_loadu_ps(accr.as_ptr().add(8));
        }
        let mut ap = apanel.as_ptr();
        let mut bp = sliver.as_ptr();
        for _ in 0..kc {
            let b0 = _mm256_loadu_ps(bp);
            let b1 = _mm256_loadu_ps(bp.add(8));
            for (r, vr) in vacc.iter_mut().enumerate() {
                let ar = _mm256_broadcast_ss(&*ap.add(r));
                vr[0] = _mm256_fmadd_ps(ar, b0, vr[0]);
                vr[1] = _mm256_fmadd_ps(ar, b1, vr[1]);
            }
            ap = ap.add(MR);
            bp = bp.add(NR);
        }
        for (r, accr) in acc.iter_mut().enumerate() {
            _mm256_storeu_ps(accr.as_mut_ptr(), vacc[r][0]);
            _mm256_storeu_ps(accr.as_mut_ptr().add(8), vacc[r][1]);
        }
    }
}

/// AVX-512 twin of the scalar `k` loop: 8 zmm accumulators (one [`NR`] = 16
/// wide register per row), one broadcast + one fused multiply-add per
/// packed A element — same fused operation chain, so bitwise-equal output.
#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
#[inline(always)]
fn inner_k_loop(apanel: &[f32], sliver: &[f32], acc: &mut [[f32; NR]; MR]) {
    use std::arch::x86_64::*;
    let kc = apanel.len() / MR;
    debug_assert_eq!(sliver.len(), kc * NR);
    // SAFETY: all pointer arithmetic stays inside `apanel` (kc*MR elements),
    // `sliver` (kc*NR elements) and `acc` (MR*NR elements); AVX-512 is
    // compile-time-required by the cfg gate above.
    unsafe {
        let mut vacc = [_mm512_setzero_ps(); MR];
        for (r, accr) in acc.iter().enumerate() {
            vacc[r] = _mm512_loadu_ps(accr.as_ptr());
        }
        let mut ap = apanel.as_ptr();
        let mut bp = sliver.as_ptr();
        for _ in 0..kc {
            let b0 = _mm512_loadu_ps(bp);
            for (r, vr) in vacc.iter_mut().enumerate() {
                let ar = _mm512_set1_ps(*ap.add(r));
                *vr = _mm512_fmadd_ps(ar, b0, *vr);
            }
            ap = ap.add(MR);
            bp = bp.add(NR);
        }
        for (r, accr) in acc.iter_mut().enumerate() {
            _mm512_storeu_ps(accr.as_mut_ptr(), vacc[r]);
        }
    }
}

/// The unblocked in-order reference implementation the packed kernel must
/// match **bitwise**. Used by the property tests and the bench baseline;
/// do not "optimize" it — its accumulation chain (`mul_add` over `k` in
/// ascending order) *is* the spec.
pub fn naive_gemm(layout: Layout, a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0f32;
            for p in 0..k {
                let av = match layout {
                    Layout::NN | Layout::NT => a[i * k + p],
                    Layout::TN => a[p * m + i],
                };
                let bv = match layout {
                    Layout::NN | Layout::TN => b[p * n + j],
                    Layout::NT => b[j * k + p],
                };
                s = av.mul_add(bv, s);
            }
            out[i * n + j] = s;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn randv(len: usize, rng: &mut Rng64) -> Vec<f32> {
        (0..len).map(|_| rng.normal()).collect()
    }

    fn check_bitwise(layout: Layout, m: usize, k: usize, n: usize, seed: u64) {
        let mut rng = Rng64::seed_from_u64(seed);
        let (a_len, b_len) = match layout {
            Layout::NN => (m * k, k * n),
            Layout::NT => (m * k, n * k),
            Layout::TN => (k * m, k * n),
        };
        let a = randv(a_len, &mut rng);
        let b = randv(b_len, &mut rng);
        let mut out = vec![f32::NAN; m * n]; // must be fully overwritten
        gemm_into(layout, &a, &b, &mut out, m, k, n);
        let want = naive_gemm(layout, &a, &b, m, k, n);
        for (i, (x, y)) in out.iter().zip(&want).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{layout:?} ({m},{k},{n}) element {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn bitwise_matches_naive_across_edges() {
        // Hits every edge: tile-exact, sub-tile, row/col remainders,
        // multi-KC, multi-NC, multi-MC, and wide (multi-NC with a single
        // row block — the new NC-parallel dimension).
        for (i, &(m, k, n)) in [
            (1, 1, 1),
            (4, 8, 8),
            (5, 7, 9),
            (3, 300, 11),
            (33, 17, 40),
            (64, 64, 64),
            (37, 257, 261),
            (8, 64, 600),
            (70, 300, 300),
        ]
        .iter()
        .enumerate()
        {
            for layout in [Layout::NN, Layout::NT, Layout::TN] {
                check_bitwise(layout, m, k, n, 100 + i as u64);
            }
        }
    }

    #[test]
    fn acc_seeds_from_existing_output() {
        let mut rng = Rng64::seed_from_u64(9);
        let (m, k, n) = (5, 13, 7);
        let a = randv(m * k, &mut rng);
        let b = randv(k * n, &mut rng);
        let seed_out = randv(m * n, &mut rng);
        let mut out = seed_out.clone();
        gemm_acc_into(Layout::NN, &a, &b, &mut out, m, k, n);
        // Reference: in-order accumulation starting from the seed value.
        for i in 0..m {
            for j in 0..n {
                let mut s = seed_out[i * n + j];
                for p in 0..k {
                    s = a[i * k + p].mul_add(b[p * n + j], s);
                }
                assert_eq!(s.to_bits(), out[i * n + j].to_bits());
            }
        }
    }

    #[test]
    fn zero_k_overwrites_or_preserves() {
        let mut out = vec![3.0f32; 6];
        gemm_into(Layout::NN, &[], &[], &mut out, 2, 0, 3);
        assert!(out.iter().all(|&v| v == 0.0));
        let mut out = vec![3.0f32; 6];
        gemm_acc_into(Layout::NN, &[], &[], &mut out, 2, 0, 3);
        assert!(out.iter().all(|&v| v == 3.0));
    }

    #[test]
    fn zero_m_or_n_is_a_noop() {
        let mut out: Vec<f32> = Vec::new();
        gemm_into(Layout::NN, &[], &[1.0, 2.0, 3.0, 4.0], &mut out, 0, 2, 2);
        gemm_into(Layout::NN, &[1.0, 2.0, 3.0, 4.0], &[], &mut out, 2, 2, 0);
        gemm_into(Layout::NT, &[], &[], &mut out, 0, 0, 0);
    }

    #[test]
    fn scatter_matches_materialized_product() {
        // gemm_scatter must hand out the exact rows of A x B, in ascending
        // row-block order, each exactly once.
        let mut rng = Rng64::seed_from_u64(77);
        let (m, k, n) = (70, 300, 300); // multi-MC, multi-KC, multi-NC
        let a = randv(m * k, &mut rng);
        let b = randv(k * n, &mut rng);
        let want = naive_gemm(Layout::NN, &a, &b, m, k, n);
        let mut got = vec![f32::NAN; m * n];
        let mut next_row = 0usize;
        gemm_scatter(
            Lhs::RowMajor(&a),
            &SliceRhs::new(&b, false, k, n),
            m,
            k,
            n,
            |tile, i0, rows| {
                assert_eq!(i0, next_row, "row blocks must arrive in order");
                assert_eq!(tile.len(), rows * n);
                got[i0 * n..(i0 + rows) * n].copy_from_slice(tile);
                next_row = i0 + rows;
            },
        );
        assert_eq!(next_row, m);
        for (i, (x, y)) in got.iter().zip(&want).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "element {i}: {x} vs {y}");
        }
    }

    #[test]
    fn scatter_zero_k_skips_callback() {
        gemm_scatter(
            Lhs::RowMajor(&[]),
            &SliceRhs::new(&[], false, 0, 3),
            2,
            0,
            3,
            |_, _, _| panic!("must not run"),
        );
    }

    #[test]
    fn colmajor_lhs_matches_materialized_transpose() {
        // Lhs::ColMajor packs a (k,m) slice as A = a^T — the no-copy path
        // conv uses for w^T · g products. Must equal the TN layout exactly.
        let mut rng = Rng64::seed_from_u64(42);
        let (m, k, n) = (37, 65, 33);
        let a_t = randv(k * m, &mut rng); // stored (k, m)
        let b = randv(k * n, &mut rng);
        let want = naive_gemm(Layout::TN, &a_t, &b, m, k, n);
        let mut got = vec![f32::NAN; m * n];
        gemm_with(
            Lhs::ColMajor(&a_t),
            &SliceRhs::new(&b, false, k, n),
            &mut got,
            m,
            k,
            n,
            false,
        );
        for (i, (x, y)) in got.iter().zip(&want).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "element {i}: {x} vs {y}");
        }
    }
}
