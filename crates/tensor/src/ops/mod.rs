//! Tensor operations, grouped by kind.
//!
//! * [`elementwise`] — broadcasting binary ops, unary maps, in-place updates.
//! * [`gemm`] — the packed, cache-blocked GEMM micro-kernel shared by
//!   matmul and conv.
//! * [`matmul`] — 2-D matrix multiply and transpose.
//! * [`reduce`] — sums, means, maxima, argmax, per-axis reductions, softmax.
//! * [`conv`] — im2col/col2im, conv2d and conv-transpose2d with gradients.

pub mod conv;
pub mod elementwise;
pub mod gemm;
pub mod matmul;
pub mod reduce;
