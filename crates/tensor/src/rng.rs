//! Seeded random number generation for reproducible experiments.
//!
//! Every stochastic component in the workspace (weight init, noise batches,
//! dataset synthesis, batch sampling, swap permutations, crash schedules)
//! draws from an explicitly seeded [`Rng64`], so whole training runs are
//! bit-for-bit reproducible — a property several integration tests rely on
//! (e.g. threaded vs sequential MD-GAN equivalence).

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded RNG with the handful of draws the workspace needs.
///
/// Wraps [`rand::rngs::StdRng`] and adds a Box–Muller standard-normal
/// sampler (the `rand_distr` crate is deliberately not a dependency).
#[derive(Clone, Debug)]
pub struct Rng64 {
    inner: StdRng,
    /// Cached second output of the last Box–Muller transform.
    spare_normal: Option<f32>,
}

impl Rng64 {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng64 {
            inner: StdRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Derives an independent child RNG; used to give each worker/node its
    /// own stream while keeping the whole system a function of one seed.
    pub fn fork(&mut self, salt: u64) -> Rng64 {
        let s = self.inner.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Rng64::seed_from_u64(s)
    }

    /// Number of words in the serialized state (see [`Rng64::state_words`]).
    pub const STATE_WORDS: usize = 5;

    /// Serializes the full generator state into five `u64` words: the four
    /// xoshiro256++ state words plus one word encoding the cached Box–Muller
    /// spare sample (`1 << 32 | f32 bits` when present, `0` when absent).
    ///
    /// A generator rebuilt with [`Rng64::from_state_words`] continues the
    /// exact stream — this is what makes checkpoint/resume bit-identical.
    pub fn state_words(&self) -> [u64; Self::STATE_WORDS] {
        let s = self.inner.state();
        let spare = match self.spare_normal {
            Some(z) => (1u64 << 32) | u64::from(z.to_bits()),
            None => 0,
        };
        [s[0], s[1], s[2], s[3], spare]
    }

    /// Rebuilds a generator from [`Rng64::state_words`] output.
    pub fn from_state_words(w: [u64; Self::STATE_WORDS]) -> Self {
        Rng64 {
            inner: StdRng::from_state([w[0], w[1], w[2], w[3]]),
            spare_normal: if w[4] >> 32 != 0 {
                Some(f32::from_bits(w[4] as u32))
            } else {
                None
            },
        }
    }

    /// Uniform f32 in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f32 {
        self.inner.gen::<f32>()
    }

    /// Uniform u64.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform usize in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        self.inner.gen_range(0..n)
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // u1 in (0,1] to keep ln() finite.
        let u1: f32 = 1.0 - self.inner.gen::<f32>();
        let u2: f32 = self.inner.gen::<f32>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    #[inline]
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// A uniformly random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        self.shuffle(&mut p);
        p
    }

    /// A uniformly random *derangement* of `0..n` (no fixed points), by
    /// rejection sampling. For `n == 1` there is no derangement; we return
    /// the identity and let callers treat a single worker as "no swap".
    pub fn derangement(&mut self, n: usize) -> Vec<usize> {
        if n <= 1 {
            return (0..n).collect();
        }
        loop {
            let p = self.permutation(n);
            if p.iter().enumerate().all(|(i, &pi)| i != pi) {
                return p;
            }
        }
    }

    /// Samples `k` distinct indices from `0..n` (k <= n), in random order.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct from {n}");
        // Partial Fisher–Yates.
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fork_streams_diverge() {
        let mut root = Rng64::seed_from_u64(1);
        let mut c1 = root.fork(0);
        let mut c2 = root.fork(1);
        let a: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| c2.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn state_roundtrip_continues_every_stream() {
        let mut a = Rng64::seed_from_u64(77);
        // Consume an odd number of normals so the Box–Muller spare is
        // cached — the trickiest part of the state to carry across.
        for _ in 0..7 {
            a.normal();
        }
        let mut b = Rng64::from_state_words(a.state_words());
        for _ in 0..32 {
            assert_eq!(a.normal().to_bits(), b.normal().to_bits());
            assert_eq!(a.next_u64(), b.next_u64());
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
        assert_eq!(a.permutation(17), b.permutation(17));
    }

    #[test]
    fn state_words_capture_absent_spare() {
        let a = Rng64::seed_from_u64(3);
        let w = a.state_words();
        assert_eq!(w[4], 0, "fresh rng has no cached spare normal");
        let mut b = Rng64::from_state_words(w);
        let mut a2 = Rng64::seed_from_u64(3);
        assert_eq!(a2.normal().to_bits(), b.normal().to_bits());
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = Rng64::seed_from_u64(9);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = Rng64::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = Rng64::seed_from_u64(11);
        let p = rng.permutation(20);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn derangement_has_no_fixed_points() {
        let mut rng = Rng64::seed_from_u64(13);
        for n in [2usize, 3, 5, 10, 50] {
            let d = rng.derangement(n);
            assert!(d.iter().enumerate().all(|(i, &x)| i != x), "n={n}: {d:?}");
            let mut sorted = d.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn derangement_of_one_is_identity() {
        let mut rng = Rng64::seed_from_u64(3);
        assert_eq!(rng.derangement(1), vec![0]);
        assert!(rng.derangement(0).is_empty());
    }

    #[test]
    fn sample_distinct_properties() {
        let mut rng = Rng64::seed_from_u64(17);
        let s = rng.sample_distinct(10, 4);
        assert_eq!(s.len(), 4);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
        assert!(s.iter().all(|&x| x < 10));
    }

    #[test]
    fn normal_with_scales_and_shifts() {
        let mut rng = Rng64::seed_from_u64(23);
        let n = 10_000;
        let xs: Vec<f32> = (0..n).map(|_| rng.normal_with(3.0, 0.5)).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }
}
