//! Process-wide recycling pool for `f32` buffers — the allocation substrate
//! behind every tensor op.
//!
//! Training loops allocate the same handful of buffer sizes thousands of
//! times per run (layer outputs, gradients, im2col columns, RNG noise). The
//! global allocator handles this fine, but "fine" still means a malloc/free
//! pair per tensor on the hot path and no visibility into whether steady
//! state is allocation-free. This pool closes both gaps:
//!
//! * [`Tensor`](crate::Tensor) drops return their backing `Vec<f32>` here
//!   instead of freeing it, and tensor ops draw output buffers from here
//!   instead of `vec![...]` — so once a training loop has warmed up, every
//!   request is served by recycling ([`stats`] shows `misses` go flat);
//! * requests are matched **best-fit**: the smallest pooled buffer with
//!   `capacity >= len` is returned, and only if it wastes less than
//!   [`MAX_WASTE_FACTOR`]× the request — a 10-element request never burns a
//!   megabyte buffer, so distinct working-set sizes coexist;
//! * the pool is bounded ([`MAX_ENTRIES`] buffers / [`MAX_BYTES`] bytes);
//!   when full, the smallest buffers are evicted (freed) first;
//! * `ws_hits` / `ws_misses` / `ws_bytes_recycled` counters are exported
//!   through `md-telemetry` run records the same way the worker-pool
//!   counters are, so "zero allocation in steady state" is a measurable
//!   claim, not a hope.
//!
//! Buffers handed out by [`take_raw`] have **length zero** and arbitrary
//! prior capacity contents; the zeroing/filling variants are the safe entry
//! points for callers that read before writing, and [`take_uninit`] hands
//! out full-length buffers with arbitrary (but initialized) contents for
//! callers that overwrite every element they later read — the shared GEMM
//! packing workspace draws from it once per call, so the A/B panel buffers
//! cost one mutex round trip instead of a multi-megabyte memset. All entry
//! points are thread-safe behind one mutex — the lock is taken once per
//! tensor allocation (nanoseconds), never per element; per-thread scratch
//! stays on the thread-local paths in [`crate::pool`], so pool workers do
//! not contend on it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Buffers below this many elements are not worth pooling: the mutex round
/// trip costs about as much as a small malloc, and tiny buffers would
/// crowd the entry budget.
pub const MIN_POOL_LEN: usize = 16;

/// A pooled buffer only serves a request if it wastes less than this factor
/// of capacity (`capacity <= len * MAX_WASTE_FACTOR`).
pub const MAX_WASTE_FACTOR: usize = 4;

/// Maximum number of idle buffers retained.
pub const MAX_ENTRIES: usize = 512;

/// Maximum total bytes of idle capacity retained (256 MiB).
pub const MAX_BYTES: usize = 256 << 20;

/// Idle buffers sorted ascending by capacity, plus their total byte size.
struct Shelf {
    bufs: Vec<Vec<f32>>,
    bytes: usize,
}

static SHELF: Mutex<Shelf> = Mutex::new(Shelf {
    bufs: Vec::new(),
    bytes: 0,
});

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static BYTES_RECYCLED: AtomicU64 = AtomicU64::new(0);

/// Lifetime counters of the workspace pool, for telemetry export.
///
/// In a warmed-up training loop `misses` stays flat from one iteration to
/// the next: every tensor-buffer request is served by recycling.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Requests served from the pool (no heap allocation).
    pub hits: u64,
    /// Requests that fell through to the allocator.
    pub misses: u64,
    /// Total bytes of allocation traffic avoided by hits.
    pub bytes_recycled: u64,
    /// Idle buffers currently held.
    pub pooled_bufs: u64,
    /// Idle capacity currently held, in bytes.
    pub pooled_bytes: u64,
}

/// Snapshot of the workspace counters.
pub fn stats() -> WorkspaceStats {
    let shelf = SHELF.lock().unwrap_or_else(PoisonError::into_inner);
    WorkspaceStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        bytes_recycled: BYTES_RECYCLED.load(Ordering::Relaxed),
        pooled_bufs: shelf.bufs.len() as u64,
        pooled_bytes: shelf.bytes as u64,
    }
}

/// Returns an empty `Vec` with `capacity >= len`, recycled when possible.
///
/// The returned vector has **length zero**; its spare capacity holds
/// arbitrary stale bytes from previous uses (never exposed through safe
/// code). Requests below [`MIN_POOL_LEN`] bypass the pool and are not
/// counted.
pub fn take_raw(len: usize) -> Vec<f32> {
    if len < MIN_POOL_LEN {
        return Vec::with_capacity(len);
    }
    match pop_fit(len) {
        Some(mut buf) => {
            buf.clear();
            buf
        }
        None => Vec::with_capacity(len),
    }
}

/// A buffer of exactly `len` elements with **arbitrary** (but initialized —
/// never uninitialized-memory) contents: recycled buffers keep whatever
/// values their previous owner left behind.
///
/// This is the zero-cost entry point for callers that overwrite every
/// element they will later read (GEMM packing buffers, full-overwrite
/// outputs): a pool hit costs one mutex round trip and at most a truncate,
/// no memset. Only the cold paths write: a pool miss zero-fills a fresh
/// allocation, and a hit whose previous length was shorter than `len`
/// zero-extends the gap (Rust has no safe way to expose the spare capacity's
/// stale bytes).
pub fn take_uninit(len: usize) -> Vec<f32> {
    if len < MIN_POOL_LEN {
        return vec![0.0; len];
    }
    match pop_fit(len) {
        Some(mut buf) => {
            if buf.len() >= len {
                buf.truncate(len);
            } else {
                // Elements past the recycled length are spare capacity whose
                // bytes were never initialized through this Vec; zero only
                // that gap.
                buf.resize(len, 0.0);
            }
            buf
        }
        None => vec![0.0; len],
    }
}

/// Best-fit shelf pop shared by the `take_*` entry points; updates the
/// hit/miss counters. Returned buffers keep the length their previous owner
/// recycled them with (every element below that length is initialized).
fn pop_fit(len: usize) -> Option<Vec<f32>> {
    let recycled = {
        let mut shelf = SHELF.lock().unwrap_or_else(PoisonError::into_inner);
        let idx = shelf.bufs.partition_point(|b| b.capacity() < len);
        if idx < shelf.bufs.len() && shelf.bufs[idx].capacity() / MAX_WASTE_FACTOR <= len {
            let buf = shelf.bufs.remove(idx);
            shelf.bytes -= buf.capacity() * 4;
            Some(buf)
        } else {
            None
        }
    };
    match recycled {
        Some(buf) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            BYTES_RECYCLED.fetch_add(4 * len as u64, Ordering::Relaxed);
            Some(buf)
        }
        None => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

/// A buffer of exactly `len` elements, all set to `value`.
pub fn take_filled(len: usize, value: f32) -> Vec<f32> {
    let mut buf = take_raw(len);
    buf.resize(len, value);
    buf
}

/// A buffer of exactly `len` elements, zero-filled.
pub fn take_zeroed(len: usize) -> Vec<f32> {
    take_filled(len, 0.0)
}

/// A recycled copy of `src`.
pub fn take_copy(src: &[f32]) -> Vec<f32> {
    let mut buf = take_raw(src.len());
    buf.extend_from_slice(src);
    buf
}

/// Returns a no-longer-needed buffer to the pool (called by `Tensor::drop`).
///
/// Buffers below [`MIN_POOL_LEN`] capacity are simply freed. When the pool
/// is at its entry or byte budget, the smallest retained buffers are evicted
/// to make room — large buffers are the expensive ones to reallocate.
pub fn recycle(buf: Vec<f32>) {
    let cap = buf.capacity();
    if cap < MIN_POOL_LEN {
        return;
    }
    // The buffer is shelved with its length intact: [`take_uninit`] uses the
    // recycled length as the proof of how far the contents are initialized.
    // [`take_raw`] clears on the way out instead.
    let mut evicted: Vec<Vec<f32>> = Vec::new();
    {
        let mut shelf = SHELF.lock().unwrap_or_else(PoisonError::into_inner);
        let idx = shelf.bufs.partition_point(|b| b.capacity() < cap);
        shelf.bufs.insert(idx, buf);
        shelf.bytes += cap * 4;
        while shelf.bufs.len() > MAX_ENTRIES || shelf.bytes > MAX_BYTES {
            let victim = shelf.bufs.remove(0);
            shelf.bytes -= victim.capacity() * 4;
            evicted.push(victim);
        }
    }
    // Free evicted buffers outside the lock.
    drop(evicted);
}

/// Empties the pool, freeing all idle buffers. Counters are monotonic and
/// unaffected. Intended for tests and memory-pressure hooks.
pub fn clear() {
    let drained = {
        let mut shelf = SHELF.lock().unwrap_or_else(PoisonError::into_inner);
        shelf.bytes = 0;
        std::mem::take(&mut shelf.bufs)
    };
    drop(drained);
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: unit tests in this binary run concurrently and the pool is
    // process-global, so tests here avoid asserting on the global counters;
    // the dedicated `workspace_steady` integration binary (one test, one
    // process) owns the counter-flatness assertions.

    #[test]
    fn round_trip_reuses_capacity() {
        // An unusual size no kernel test uses, so no other thread steals it.
        let len = 12_347usize;
        let buf = take_zeroed(len);
        let ptr = buf.as_ptr() as usize;
        recycle(buf);
        let again = take_zeroed(len);
        assert_eq!(again.as_ptr() as usize, ptr, "buffer was not recycled");
        recycle(again);
    }

    #[test]
    fn tiny_requests_bypass_the_pool() {
        // Below MIN_POOL_LEN the allocation is exact-size and never pooled.
        let b = take_zeroed(MIN_POOL_LEN - 1);
        assert_eq!(b.capacity(), MIN_POOL_LEN - 1);
        recycle(b);
    }

    #[test]
    fn waste_guard_rejects_oversized_buffers() {
        // A giant recycled buffer must not be burned on a small request.
        recycle(Vec::with_capacity(1 << 20));
        let small = take_zeroed(MIN_POOL_LEN);
        assert!(
            small.capacity() < (1 << 20),
            "small request was served a {}-element buffer",
            small.capacity()
        );
        recycle(small);
    }

    #[test]
    fn filled_and_copy_have_exact_lengths() {
        let f = take_filled(100, 2.5);
        assert_eq!(f.len(), 100);
        assert!(f.iter().all(|&v| v == 2.5));
        let src = [1.0f32, 2.0, 3.0];
        let c = take_copy(&src);
        assert_eq!(c, &src);
        recycle(f);
    }

    #[test]
    fn recycled_buffer_is_rezeroed() {
        let mut b = take_filled(4096, 7.0);
        b.fill(9.0);
        recycle(b);
        let z = take_zeroed(4096);
        assert!(z.iter().all(|&v| v == 0.0), "stale contents leaked");
        recycle(z);
    }

    #[test]
    fn zero_len_request_is_free() {
        let b = take_raw(0);
        assert_eq!(b.capacity(), 0);
    }

    #[test]
    fn uninit_reuses_contents_and_zero_extends_the_gap() {
        // An unusual size no kernel test uses, so no other thread steals it.
        let len = 23_459usize;
        let mut b = take_filled(len, 3.0);
        b.truncate(len - 100); // recycle with a shorter initialized length
        let ptr = b.as_ptr() as usize;
        recycle(b);
        let u = take_uninit(len);
        assert_eq!(u.as_ptr() as usize, ptr, "buffer was not recycled");
        assert_eq!(u.len(), len);
        assert!(u[..len - 100].iter().all(|&v| v == 3.0));
        assert!(
            u[len - 100..].iter().all(|&v| v == 0.0),
            "capacity gap past the recycled length must be zero-extended"
        );
        recycle(u);
    }

    #[test]
    fn uninit_tiny_request_is_exact_and_zeroed() {
        let b = take_uninit(MIN_POOL_LEN - 1);
        assert_eq!(b.len(), MIN_POOL_LEN - 1);
        assert!(b.iter().all(|&v| v == 0.0));
    }
}
