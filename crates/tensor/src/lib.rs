//! # md-tensor
//!
//! A small, dependency-light dense tensor library for f32 data, built for the
//! MD-GAN reproduction. It provides exactly the kernels a GAN training stack
//! needs:
//!
//! * an n-dimensional row-major [`Tensor`] over `Vec<f32>`,
//! * elementwise arithmetic with NumPy-style broadcasting,
//! * blocked 2-D matrix multiplication (optionally threaded),
//! * `im2col`/`col2im` based 2-D convolution and transposed convolution,
//!   with analytic gradients for inputs, weights and biases,
//! * reductions (sum/mean/max/argmax, per-axis variants),
//! * seeded RNG helpers (uniform, Box–Muller normal) so every experiment in
//!   the repository is reproducible bit-for-bit.
//!
//! The design intentionally favours clarity and testability over raw speed:
//! all tensors are contiguous, ops allocate their outputs, and hot kernels
//! (matmul, im2col) are written as cache-friendly loops that LLVM vectorizes
//! well at `opt-level >= 2`. Large kernels are split over a persistent
//! worker pool ([`pool`]) — long-lived threads created lazily once, so
//! steady-state kernel calls never spawn OS threads — with results that are
//! bitwise identical for any thread count (see [`parallel`] and the
//! `TENSOR_THREADS` override).

pub mod ops;
pub mod parallel;
pub mod pool;
pub mod rng;
pub mod shape;
pub mod tensor;
pub mod workspace;

pub use shape::Shape;
pub use tensor::Tensor;

/// Numeric tolerance used across the workspace for float comparisons in tests.
pub const TEST_EPS: f32 = 1e-4;

/// Asserts that two f32 slices are elementwise close; panics with context.
///
/// Used pervasively by unit tests in this crate and downstream crates.
pub fn assert_close(a: &[f32], b: &[f32], tol: f32) {
    assert_eq!(
        a.len(),
        b.len(),
        "length mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        let diff = (x - y).abs();
        let scale = 1.0_f32.max(x.abs()).max(y.abs());
        assert!(
            diff <= tol * scale,
            "element {i} differs: {x} vs {y} (|diff|={diff}, tol={tol})"
        );
    }
}
