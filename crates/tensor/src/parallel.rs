//! Data-parallel helpers built on the persistent worker pool in
//! [`crate::pool`].
//!
//! The MD-GAN experiments run many small models; most kernels are too small
//! for threading to pay off, so parallelism is opt-in and chunk-based. The
//! helpers here split an index range over a bounded number of long-lived
//! pool workers (no OS thread is spawned in steady state) and are used by
//! the batched convolution kernels, the matmul family and the transpose for
//! large problem sizes.
//!
//! # Determinism
//!
//! Task index `i` is always executed by slot `i % threads`, slots execute
//! their indices in ascending order, and every task writes only data derived
//! from its own index, so results are **bitwise identical for any thread
//! count** — `TENSOR_THREADS=1` and `TENSOR_THREADS=8` produce the same
//! bytes. Nested parallel calls run sequentially (see [`crate::pool`]),
//! which preserves this guarantee.

use crate::pool;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Work-size threshold (in "inner loop elements") below which `parallel_for`
/// runs sequentially. With the persistent pool the per-dispatch cost is down
/// to a couple of microseconds (channel send + park/unpark), but splitting
/// tiny kernels still loses to cache locality, so the threshold stays in the
/// multi-MFLOP range (measured on 2-core CI boxes, where a low threshold
/// cost a 10x slowdown on GAN-sized matmuls).
pub const PAR_THRESHOLD: usize = 1 << 23;

/// Returns the number of worker slots to use for data-parallel kernels.
///
/// Resolution order:
/// 1. a nonzero [`set_max_threads`] override (or a live
///    [`scoped_max_threads`] guard),
/// 2. the `TENSOR_THREADS` environment variable (parsed once per process;
///    invalid or zero values are ignored),
/// 3. the number of available CPUs, capped at 8.
pub fn max_threads() -> usize {
    let configured = MAX_THREADS.load(Ordering::Relaxed);
    if configured != 0 {
        return configured;
    }
    env_default_threads()
}

static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Process-wide default from `TENSOR_THREADS` / hardware, cached after the
/// first read (0 = not yet resolved).
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

fn env_default_threads() -> usize {
    let cached = DEFAULT_THREADS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let resolved = parse_thread_count(std::env::var("TENSOR_THREADS").ok().as_deref())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8)
        });
    DEFAULT_THREADS.store(resolved, Ordering::Relaxed);
    resolved
}

/// Parses a `TENSOR_THREADS`-style value: positive integers are honored,
/// anything else (unset, empty, zero, garbage) falls back to the automatic
/// default.
fn parse_thread_count(value: Option<&str>) -> Option<usize> {
    value?.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// Overrides the thread count used by [`parallel_for`]. `0` restores the
/// automatic default (`TENSOR_THREADS`, then hardware).
///
/// This is a process-wide knob; tests should prefer [`scoped_max_threads`],
/// which serializes concurrent overrides and restores the previous value.
pub fn set_max_threads(n: usize) {
    MAX_THREADS.store(n, Ordering::Relaxed);
}

/// Serializes [`scoped_max_threads`] regions so concurrently running tests
/// cannot observe each other's thread-count overrides.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Exclusive thread-count override, restored on drop.
///
/// Holds a process-wide lock for its lifetime: two guards never overlap, so
/// tests (which cargo runs on concurrent threads) cannot race on the global
/// knob. Returned by [`scoped_max_threads`].
pub struct MaxThreadsGuard {
    prev: usize,
    _lock: MutexGuard<'static, ()>,
}

impl Drop for MaxThreadsGuard {
    fn drop(&mut self) {
        MAX_THREADS.store(self.prev, Ordering::Relaxed);
    }
}

/// Sets [`max_threads`] to `n` (0 = automatic default) until the returned
/// guard drops, at which point the previous value is restored. See
/// [`MaxThreadsGuard`] for the locking semantics.
pub fn scoped_max_threads(n: usize) -> MaxThreadsGuard {
    // A panic while a guard is held poisons the lock but the Drop impl has
    // already restored the previous value, so the state is still valid.
    let lock = OVERRIDE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let prev = MAX_THREADS.swap(n, Ordering::Relaxed);
    MaxThreadsGuard { prev, _lock: lock }
}

/// Runs `body(i)` for every `i in 0..n`, splitting the range over up to
/// [`max_threads`] pool slots when `n * work_hint` exceeds
/// [`PAR_THRESHOLD`].
///
/// `work_hint` is the caller's estimate of the per-index cost in elementary
/// operations; it only gates whether threading is worth it.
///
/// Index `i` runs on slot `i % threads` in ascending order (deterministic);
/// the closure receives disjoint indices, so it may freely mutate disjoint
/// state through e.g. raw chunk pointers — the typical pattern in this
/// workspace is [`parallel_for_chunks`], which hands out disjoint `&mut`
/// chunks safely. Calls nested inside another parallel region run inline.
pub fn parallel_for<F>(n: usize, work_hint: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    let threads = max_threads();
    if threads <= 1
        || n <= 1
        || n.saturating_mul(work_hint) < PAR_THRESHOLD
        || pool::in_parallel_region()
    {
        pool::note_sequential();
        for i in 0..n {
            body(i);
        }
        return;
    }
    pool::run(threads.min(n), n, &body);
}

/// Runs `body(r, c)` for every cell of an `rows x cols` grid, flattened
/// row-major over [`parallel_for`]: task `t` maps to cell
/// `(t / cols, t % cols)`, so cell `(r, c)` always executes on slot
/// `(r * cols + c) % threads` — the same fixed task→slot mapping contract.
///
/// This is the dispatch shape of the shared-panel GEMM schedule (row-block ×
/// column-panel compute grid): one flat dispatch covers both parallel
/// dimensions, so wide shapes (large `n`, small `m`) still fan out even when
/// there are few row blocks. `work_hint` is the per-cell cost estimate.
pub fn parallel_for_grid<F>(rows: usize, cols: usize, work_hint: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    if rows == 0 || cols == 0 {
        return;
    }
    parallel_for(rows * cols, work_hint, |t| body(t / cols, t % cols));
}

/// Splits `out` into `n` equal chunks and runs `body(i, chunk_i)` in
/// parallel. This is the safe entry point for "one output slot per batch
/// sample" kernels (conv2d over a batch, per-sample feedback application).
///
/// Degenerate shapes are well-defined rather than panicking:
/// * `n == 0` with an empty `out` is a no-op (a zero-batch kernel);
/// * zero-length chunks (`out` empty, `n > 0`) invoke `body` sequentially
///   with empty slices, preserving any side effects.
///
/// # Panics
/// Panics if `out.len()` is not divisible by `n`, or if `n == 0` while
/// `out` is non-empty.
pub fn parallel_for_chunks<F>(out: &mut [f32], n: usize, work_hint: usize, body: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if n == 0 {
        assert!(
            out.is_empty(),
            "parallel_for_chunks: n == 0 with {} output elements",
            out.len()
        );
        return;
    }
    assert_eq!(
        out.len() % n,
        0,
        "output length {} not divisible by {n}",
        out.len()
    );
    let chunk = out.len() / n;
    if chunk == 0 {
        for i in 0..n {
            body(i, &mut []);
        }
        return;
    }
    let threads = max_threads();
    if threads <= 1
        || n <= 1
        || n.saturating_mul(work_hint.max(chunk)) < PAR_THRESHOLD
        || pool::in_parallel_region()
    {
        pool::note_sequential();
        for (i, c) in out.chunks_mut(chunk).enumerate() {
            body(i, c);
        }
        return;
    }
    let threads = threads.min(n);
    let base = out.as_mut_ptr() as usize;
    pool::run(threads, n, &|i| {
        // SAFETY: chunk boundaries are disjoint per task index, each index
        // is executed exactly once, and `out` outlives the blocking
        // `pool::run` call.
        let c = unsafe { std::slice::from_raw_parts_mut((base as *mut f32).add(i * chunk), chunk) };
        body(i, c);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_for_visits_every_index_once() {
        let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        parallel_for(100, PAR_THRESHOLD, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_sequential_small() {
        let count = AtomicUsize::new(0);
        parallel_for(4, 1, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn grid_visits_every_cell_once_in_row_major_order_per_slot() {
        let _guard = scoped_max_threads(4);
        let hits: Vec<AtomicU64> = (0..7 * 5).map(|_| AtomicU64::new(0)).collect();
        parallel_for_grid(7, 5, PAR_THRESHOLD, |r, c| {
            hits[r * 5 + c].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn grid_degenerate_dims_are_noops() {
        parallel_for_grid(0, 5, 1, |_, _| panic!("must not run"));
        parallel_for_grid(5, 0, 1, |_, _| panic!("must not run"));
    }

    #[test]
    fn chunks_write_disjoint_regions() {
        let mut out = vec![0.0f32; 64];
        parallel_for_chunks(&mut out, 8, PAR_THRESHOLD, |i, chunk| {
            for v in chunk.iter_mut() {
                *v = i as f32;
            }
        });
        for i in 0..8 {
            assert!(out[i * 8..(i + 1) * 8].iter().all(|&v| v == i as f32));
        }
    }

    #[test]
    fn chunks_pooled_matches_round_robin_mapping() {
        // Force the pooled path regardless of host CPU count and verify
        // every chunk is written exactly once with its own index.
        let _guard = scoped_max_threads(4);
        let mut out = vec![-1.0f32; 256];
        parallel_for_chunks(&mut out, 32, PAR_THRESHOLD, |i, chunk| {
            for v in chunk.iter_mut() {
                *v = i as f32;
            }
        });
        for i in 0..32 {
            assert!(out[i * 8..(i + 1) * 8].iter().all(|&v| v == i as f32));
        }
    }

    #[test]
    fn chunks_zero_batch_is_noop() {
        let mut out: Vec<f32> = Vec::new();
        parallel_for_chunks(&mut out, 0, 1, |_, _| panic!("must not run"));
    }

    #[test]
    fn chunks_zero_len_chunks_still_invoke_body() {
        let mut out: Vec<f32> = Vec::new();
        let count = AtomicUsize::new(0);
        parallel_for_chunks(&mut out, 5, 1, |_, c| {
            assert!(c.is_empty());
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 5);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn chunks_reject_uneven_split() {
        let mut out = vec![0.0f32; 10];
        parallel_for_chunks(&mut out, 3, 1, |_, _| {});
    }

    #[test]
    #[should_panic(expected = "n == 0")]
    fn chunks_reject_zero_n_with_output() {
        let mut out = vec![0.0f32; 10];
        parallel_for_chunks(&mut out, 0, 1, |_, _| {});
    }

    #[test]
    fn scoped_max_threads_forces_sequential_and_restores() {
        let outer_before = max_threads();
        {
            let _guard = scoped_max_threads(1);
            assert_eq!(max_threads(), 1);
            let count = AtomicUsize::new(0);
            parallel_for(1000, PAR_THRESHOLD, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), 1000);
        }
        assert_eq!(max_threads(), outer_before);
    }

    #[test]
    fn scoped_overrides_nest_by_serializing() {
        let before = max_threads();
        {
            let _g1 = scoped_max_threads(3);
            assert_eq!(max_threads(), 3);
        }
        {
            let _g2 = scoped_max_threads(5);
            assert_eq!(max_threads(), 5);
        }
        assert_eq!(max_threads(), before);
    }

    #[test]
    fn nested_parallel_runs_inline_without_deadlock() {
        let _guard = scoped_max_threads(4);
        let outer = AtomicUsize::new(0);
        let inner = AtomicUsize::new(0);
        parallel_for(8, PAR_THRESHOLD, |_| {
            outer.fetch_add(1, Ordering::Relaxed);
            // A kernel-within-a-kernel (conv's per-sample matmul shape).
            parallel_for(4, PAR_THRESHOLD, |_| {
                inner.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(outer.load(Ordering::Relaxed), 8);
        assert_eq!(inner.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn thread_count_parsing() {
        assert_eq!(parse_thread_count(None), None);
        assert_eq!(parse_thread_count(Some("")), None);
        assert_eq!(parse_thread_count(Some("0")), None);
        assert_eq!(parse_thread_count(Some("garbage")), None);
        assert_eq!(parse_thread_count(Some("-2")), None);
        assert_eq!(parse_thread_count(Some("4")), Some(4));
        assert_eq!(parse_thread_count(Some(" 6 ")), Some(6));
    }
}
