//! Minimal data-parallel helpers built on `crossbeam::thread::scope`.
//!
//! The MD-GAN experiments run many small models; most kernels are too small
//! for threading to pay off, so parallelism is opt-in and chunk-based.
//! The helpers here split an index range over a bounded number of scoped
//! threads and are used by the batched convolution kernels and the matmul
//! for large problem sizes.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Work-size threshold (in "inner loop elements") below which `parallel_for`
/// runs sequentially. Tuned conservatively: scoped-thread spawn costs are
/// on the order of tens of microseconds, so threading only pays off for
/// kernels in the multi-MFLOP range (measured on 2-core CI boxes, where a
/// low threshold cost a 10x slowdown on GAN-sized matmuls).
pub const PAR_THRESHOLD: usize = 1 << 23;

/// Returns the number of worker threads to use for data-parallel kernels.
///
/// Defaults to the number of available CPUs, capped at 8; can be overridden
/// (e.g. set to 1 for strictly deterministic profiling) via
/// [`set_max_threads`].
pub fn max_threads() -> usize {
    let configured = MAX_THREADS.load(Ordering::Relaxed);
    if configured != 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Overrides the thread count used by [`parallel_for`]. `0` restores the
/// automatic default.
pub fn set_max_threads(n: usize) {
    MAX_THREADS.store(n, Ordering::Relaxed);
}

/// Runs `body(i)` for every `i in 0..n`, splitting the range over up to
/// [`max_threads`] scoped threads when `n * work_hint` exceeds
/// [`PAR_THRESHOLD`].
///
/// `work_hint` is the caller's estimate of the per-index cost in elementary
/// operations; it only gates whether threading is worth it.
///
/// The closure receives disjoint indices, so it may freely mutate disjoint
/// state through e.g. raw chunk pointers; the typical pattern in this
/// workspace is [`parallel_for_chunks`], which hands out disjoint `&mut`
/// chunks safely.
pub fn parallel_for<F>(n: usize, work_hint: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    let threads = max_threads();
    if threads <= 1 || n <= 1 || n.saturating_mul(work_hint) < PAR_THRESHOLD {
        for i in 0..n {
            body(i);
        }
        return;
    }
    let threads = threads.min(n);
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                body(i);
            });
        }
    })
    .expect("parallel_for worker panicked");
}

/// Splits `out` into `n` equal chunks and runs `body(i, chunk_i)` in
/// parallel. This is the safe entry point for "one output slot per batch
/// sample" kernels (conv2d over a batch, per-sample feedback application).
///
/// # Panics
/// Panics if `out.len()` is not divisible by `n`.
pub fn parallel_for_chunks<F>(out: &mut [f32], n: usize, work_hint: usize, body: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(n > 0, "parallel_for_chunks with n == 0");
    assert_eq!(
        out.len() % n,
        0,
        "output length {} not divisible by {n}",
        out.len()
    );
    let chunk = out.len() / n;
    let threads = max_threads();
    if threads <= 1 || n <= 1 || n.saturating_mul(work_hint.max(chunk)) < PAR_THRESHOLD {
        for (i, c) in out.chunks_mut(chunk).enumerate() {
            body(i, c);
        }
        return;
    }
    // Collect raw chunk boundaries first so threads receive disjoint &mut.
    let mut chunks: Vec<&mut [f32]> = out.chunks_mut(chunk).collect();
    let threads = threads.min(n);
    crossbeam::thread::scope(|s| {
        // Round-robin assignment keeps chunk -> thread mapping deterministic.
        let mut per_thread: Vec<Vec<(usize, &mut [f32])>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (i, c) in chunks.drain(..).enumerate() {
            per_thread[i % threads].push((i, c));
        }
        for mine in per_thread {
            let body = &body;
            s.spawn(move |_| {
                for (i, c) in mine {
                    body(i, c);
                }
            });
        }
    })
    .expect("parallel_for_chunks worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_for_visits_every_index_once() {
        let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        parallel_for(100, PAR_THRESHOLD, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_sequential_small() {
        let count = AtomicUsize::new(0);
        parallel_for(4, 1, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn chunks_write_disjoint_regions() {
        let mut out = vec![0.0f32; 64];
        parallel_for_chunks(&mut out, 8, PAR_THRESHOLD, |i, chunk| {
            for v in chunk.iter_mut() {
                *v = i as f32;
            }
        });
        for i in 0..8 {
            assert!(out[i * 8..(i + 1) * 8].iter().all(|&v| v == i as f32));
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn chunks_reject_uneven_split() {
        let mut out = vec![0.0f32; 10];
        parallel_for_chunks(&mut out, 3, 1, |_, _| {});
    }

    #[test]
    fn set_max_threads_forces_sequential() {
        set_max_threads(1);
        let count = AtomicUsize::new(0);
        parallel_for(1000, PAR_THRESHOLD, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        set_max_threads(0);
    }
}
