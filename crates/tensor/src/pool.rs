//! Persistent worker pool backing [`crate::parallel`].
//!
//! The first implementation of the parallel helpers spawned fresh scoped OS
//! threads on *every* large kernel call — tens of microseconds of spawn/join
//! overhead on a path that GAN training hits thousands of times per run.
//! This module replaces that with a process-wide pool of long-lived workers:
//!
//! * workers are created **lazily** on the first job that needs them and
//!   then reused forever, so steady-state kernel calls spawn zero OS
//!   threads ([`stats`] lets callers verify `threads_spawned == pool_size`);
//! * the pool grows on demand up to the parallelism requested by
//!   [`crate::parallel::max_threads`] (which honors `set_max_threads` and
//!   the `TENSOR_THREADS` environment override);
//! * jobs are dispatched over the vendored crossbeam channels, one channel
//!   per worker, and completion is signalled with an atomic countdown plus
//!   `park`/`unpark` — no per-job heap allocation;
//! * task index `i` is always executed by slot `i % threads` in ascending
//!   order, so the work → worker mapping is deterministic and, because every
//!   task only touches data derived from its own index, results are bitwise
//!   identical for any thread count;
//! * the **calling thread participates** as slot 0, so a parallelism of `T`
//!   only ever needs `T - 1` pool workers;
//! * nested data-parallel calls (a kernel invoked from inside another
//!   kernel's parallel body, e.g. the per-sample matmul inside the batched
//!   conv) degrade to sequential execution on the spot — the pool can never
//!   deadlock on itself and nesting does not change results.
//!
//! Buffer recycling lives in [`crate::workspace`]: since the GEMM moved to
//! a shared-panel packing schedule (and the convolutions to implicit
//! im2col), kernels draw their packing panels from that process-wide shelf
//! instead of per-thread scratch, so this module is purely about threads.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};

/// One queued unit of work: a pointer to the dispatching call's shared
/// state plus the slot (strided offset) this worker should execute.
struct Job {
    shared: *const SharedJob,
    slot: usize,
}

// SAFETY: `shared` points at a `SharedJob` on the dispatching thread's
// stack. That thread blocks until every worker has decremented
// `SharedJob::remaining`, which is each worker's final access, so the
// pointee (and the closure it references) outlives all uses.
unsafe impl Send for Job {}

/// Per-dispatch state shared between the caller and its workers.
struct SharedJob {
    /// Type-erased `&(dyn Fn(usize) + Sync)` borrowed from the dispatching
    /// call frame; valid until `remaining` reaches zero.
    body: *const (dyn Fn(usize) + Sync),
    /// Number of task indices.
    n: usize,
    /// Total slots (caller + workers); slot `s` runs `s, s+stride, ...`.
    stride: usize,
    /// Workers that have not finished their slice yet.
    remaining: AtomicUsize,
    /// Set when a worker's slice panicked.
    panicked: AtomicBool,
    /// Handle used by the last finishing worker to wake the caller.
    caller: std::thread::Thread,
}

// SAFETY: all fields are either plain data, atomics, or pointers whose
// lifetime is managed as described on `Job`.
unsafe impl Sync for SharedJob {}

/// Send half of each worker's job queue, in slot order (index 0 is slot 1).
static POOL: Mutex<Vec<Sender<Job>>> = Mutex::new(Vec::new());

static THREADS_SPAWNED: AtomicU64 = AtomicU64::new(0);
static JOBS: AtomicU64 = AtomicU64::new(0);
static SEQ_JOBS: AtomicU64 = AtomicU64::new(0);
static TASKS: AtomicU64 = AtomicU64::new(0);
static BUSY_NS: AtomicU64 = AtomicU64::new(0);

/// Observer invoked with `(slot, busy)` after each pool-worker job slice.
///
/// Distributed-training harnesses install one to mirror pool activity onto
/// their tracing timeline (one track per pool thread). The `AtomicBool`
/// fast-gate keeps the cost of the common no-hook case to a single relaxed
/// load per slice — the `Mutex` is only touched while a hook is installed.
pub type PoolTraceHook = Arc<dyn Fn(usize, Duration) + Send + Sync>;

static TRACE_HOOK_SET: AtomicBool = AtomicBool::new(false);
static TRACE_HOOK: Mutex<Option<PoolTraceHook>> = Mutex::new(None);

/// Installs (or with `None`, removes) the process-wide pool trace hook.
///
/// The hook runs on pool-worker threads after every job slice; it must not
/// dispatch parallel work itself. Replacing an existing hook is allowed;
/// in-flight slices may still report to the hook they started under.
pub fn set_trace_hook(hook: Option<PoolTraceHook>) {
    let mut slot = TRACE_HOOK.lock().unwrap_or_else(PoisonError::into_inner);
    TRACE_HOOK_SET.store(hook.is_some(), Ordering::Release);
    *slot = hook;
}

/// Fires the trace hook for a finished slice; one branch when no hook is set.
fn note_pool_slice(slot: usize, busy: Duration) {
    if TRACE_HOOK_SET.load(Ordering::Relaxed) {
        let hook = TRACE_HOOK
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        if let Some(h) = hook {
            h(slot, busy);
        }
    }
}

thread_local! {
    /// True on pool workers (always) and on callers while they execute
    /// their own slot-0 share; gates nested parallelism to sequential.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// Counters describing the pool's lifetime activity, for telemetry export.
///
/// In steady state `threads_spawned == pool_size`: workers are created once
/// and reused, never respawned per call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Workers currently alive.
    pub pool_size: u64,
    /// OS threads ever created by the pool (equals `pool_size` unless the
    /// requested parallelism grew over the process lifetime).
    pub threads_spawned: u64,
    /// Parallel jobs dispatched to the pool.
    pub jobs: u64,
    /// `parallel_*` calls that ran inline (below threshold, single thread,
    /// or nested inside another parallel region).
    pub seq_jobs: u64,
    /// Task indices executed by pool workers (the caller's slot-0 share is
    /// not counted).
    pub tasks: u64,
    /// Cumulative wall time pool workers spent executing job slices.
    pub busy_ns: u64,
}

/// Snapshot of the pool counters.
pub fn stats() -> PoolStats {
    PoolStats {
        pool_size: POOL.lock().unwrap_or_else(PoisonError::into_inner).len() as u64,
        threads_spawned: THREADS_SPAWNED.load(Ordering::Relaxed),
        jobs: JOBS.load(Ordering::Relaxed),
        seq_jobs: SEQ_JOBS.load(Ordering::Relaxed),
        tasks: TASKS.load(Ordering::Relaxed),
        busy_ns: BUSY_NS.load(Ordering::Relaxed),
    }
}

/// True while the current thread is inside a parallel region (a pool worker,
/// or a caller executing its slot-0 share). [`crate::parallel`] uses this to
/// run nested data-parallel calls sequentially.
pub(crate) fn in_parallel_region() -> bool {
    IN_PARALLEL.with(Cell::get)
}

/// Tallies a `parallel_*` call that ran inline rather than on the pool.
pub(crate) fn note_sequential() {
    SEQ_JOBS.fetch_add(1, Ordering::Relaxed);
}

/// Restores the caller's `IN_PARALLEL` flag on drop.
struct RegionGuard {
    prev: bool,
}

impl RegionGuard {
    fn enter() -> Self {
        let prev = IN_PARALLEL.with(|f| f.replace(true));
        RegionGuard { prev }
    }
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_PARALLEL.with(|f| f.set(prev));
    }
}

fn worker_loop(rx: Receiver<Job>) {
    // Workers are permanently inside a parallel region: any kernel invoked
    // from a job body must run inline.
    IN_PARALLEL.with(|f| f.set(true));
    while let Ok(job) = rx.recv() {
        let t0 = Instant::now();
        // SAFETY: see `Job` — the caller keeps `shared` (and the closure it
        // points to) alive until we decrement `remaining` below.
        let shared = unsafe { &*job.shared };
        let body = unsafe { &*shared.body };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut executed = 0u64;
            let mut i = job.slot;
            while i < shared.n {
                body(i);
                executed += 1;
                i += shared.stride;
            }
            executed
        }));
        match outcome {
            Ok(executed) => {
                TASKS.fetch_add(executed, Ordering::Relaxed);
            }
            Err(_) => shared.panicked.store(true, Ordering::Relaxed),
        }
        let busy = t0.elapsed();
        BUSY_NS.fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
        note_pool_slice(job.slot, busy);
        // Clone the caller handle *before* the decrement: once `remaining`
        // hits zero the caller may invalidate `shared` at any moment.
        let caller = shared.caller.clone();
        if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            caller.unpark();
        }
    }
}

/// Grows the pool to at least `helpers` workers and queues `shared` on the
/// first `helpers` of them (slots `1..=helpers`).
fn dispatch(shared: &SharedJob, helpers: usize) {
    let mut pool = POOL.lock().unwrap_or_else(PoisonError::into_inner);
    while pool.len() < helpers {
        let (tx, rx) = unbounded::<Job>();
        let idx = pool.len();
        std::thread::Builder::new()
            .name(format!("md-tensor-{idx}"))
            .spawn(move || worker_loop(rx))
            .expect("failed to spawn md-tensor pool worker");
        THREADS_SPAWNED.fetch_add(1, Ordering::Relaxed);
        pool.push(tx);
    }
    for slot in 1..=helpers {
        pool[slot - 1]
            .send(Job {
                shared: shared as *const SharedJob,
                slot,
            })
            .expect("md-tensor pool worker exited");
    }
}

/// Runs `body(i)` for every `i in 0..n` across `threads` slots: the calling
/// thread executes slot 0 and `threads - 1` pool workers execute the rest,
/// each slot taking indices `slot, slot + threads, ...` in ascending order.
///
/// Callers guarantee `threads >= 2` and that the current thread is not
/// already inside a parallel region.
///
/// # Panics
/// Re-raises a panic from the caller's own share, and panics with
/// "pool worker panicked" if any worker's share panicked (the workers
/// themselves survive and keep serving jobs).
pub(crate) fn run(threads: usize, n: usize, body: &(dyn Fn(usize) + Sync)) {
    debug_assert!(threads >= 2, "pool::run needs at least two slots");
    debug_assert!(!in_parallel_region(), "pool::run from inside a job");
    let helpers = threads - 1;
    let shared = SharedJob {
        // SAFETY: only the lifetime is erased; `shared` (and thus this
        // pointer) is dead before `body` is, because we block on
        // `remaining` below before returning.
        body: unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                body,
            )
        },
        n,
        stride: threads,
        remaining: AtomicUsize::new(helpers),
        panicked: AtomicBool::new(false),
        caller: std::thread::current(),
    };
    JOBS.fetch_add(1, Ordering::Relaxed);
    dispatch(&shared, helpers);

    // The caller takes slot 0. While it runs, nested parallel_* calls from
    // inside `body` degrade to sequential (same policy as on the workers),
    // so the pool can never deadlock on itself.
    let caller_outcome = {
        let _region = RegionGuard::enter();
        catch_unwind(AssertUnwindSafe(|| {
            let mut i = 0;
            while i < n {
                body(i);
                i += threads;
            }
        }))
    };

    // Wait for every worker even if our own share panicked: they borrow the
    // caller's stack through `shared` until the countdown reaches zero.
    while shared.remaining.load(Ordering::Acquire) != 0 {
        std::thread::park();
    }

    if let Err(payload) = caller_outcome {
        std::panic::resume_unwind(payload);
    }
    assert!(
        !shared.panicked.load(Ordering::Relaxed),
        "md-tensor pool worker panicked"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestCounter;

    #[test]
    fn run_covers_every_index_once() {
        let hits: Vec<TestCounter> = (0..101).map(|_| TestCounter::new(0)).collect();
        run(4, 101, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn steady_state_spawns_no_new_threads() {
        // Warm the pool, then check repeated jobs leave the spawn counter
        // equal to the pool size (i.e. zero per-call thread creation).
        run(3, 16, &|_| {});
        let before = stats();
        for _ in 0..32 {
            run(3, 16, &|_| {});
        }
        let after = stats();
        assert_eq!(after.threads_spawned, before.threads_spawned);
        assert!(after.pool_size >= 2);
        assert_eq!(after.jobs, before.jobs + 32);
        assert!(after.tasks > before.tasks);
    }

    #[test]
    fn worker_panic_is_reported_and_pool_survives() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run(2, 8, &|i| {
                // Index 1 lands on slot 1 (a pool worker).
                assert!(i != 1, "boom");
            });
        }));
        assert!(caught.is_err());
        // The worker survives the panic and keeps serving jobs.
        let hits = TestCounter::new(0);
        run(2, 8, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn trace_hook_sees_worker_slices_and_uninstalls() {
        let fired = Arc::new(TestCounter::new(0));
        let seen = Arc::clone(&fired);
        set_trace_hook(Some(Arc::new(move |slot, busy| {
            assert!(slot >= 1, "only pool workers report, caller is slot 0");
            assert!(busy <= Duration::from_secs(60));
            seen.fetch_add(1, Ordering::Relaxed);
        })));
        run(3, 32, &|_| {});
        set_trace_hook(None);
        let after = fired.load(Ordering::Relaxed);
        // Two helper slots each executed one slice.
        assert!(after >= 2, "hook fired {after} times");
        run(3, 32, &|_| {});
        assert_eq!(fired.load(Ordering::Relaxed), after, "hook not removed");
    }
}
