//! Timeout-based failure detection.
//!
//! The MD-GAN server has no crash oracle in robust mode: the only liveness
//! signal is whether a worker's feedback made it back before the gather
//! deadline. [`FailureDetector`] turns that signal into a suspicion list —
//! suspect after `threshold` *consecutive* misses, rejoin the moment the
//! worker is heard again. This is the classic unreliable failure detector:
//! suspicion is a routing hint (skip the worker's downlink, keep it out of
//! discriminator swaps), never a verdict, so a slow-but-alive worker only
//! loses iterations, not its shard.
//!
//! Two extensions for elastic membership:
//!
//! * storage is keyed by worker id in ordered maps rather than indexed
//!   vectors, so workers can be [`track`](FailureDetector::track)ed as
//!   they join and [`forget`](FailureDetector::forget)ten as they leave
//!   without re-sizing anything;
//! * an optional eviction timeout
//!   ([`with_eviction`](FailureDetector::with_eviction)): a suspected
//!   worker that stays silent for `evict_after` further misses is
//!   *permanently* evicted — unlike suspicion, eviction is a verdict and
//!   is never reversed by a late message.

use std::collections::{BTreeMap, BTreeSet};

/// Outcome of feeding one observation to the detector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Liveness {
    /// No state transition.
    Unchanged,
    /// The worker just crossed the miss threshold and is now suspected.
    Suspected,
    /// A previously suspected worker was heard from again.
    Rejoined,
    /// The worker exhausted the eviction timeout and is now permanently
    /// removed — no future message can bring it back.
    Evicted,
}

/// Per-worker consecutive-miss tracking, keyed by worker id.
#[derive(Clone, Debug)]
pub struct FailureDetector {
    misses: BTreeMap<usize, u32>,
    suspected: BTreeSet<usize>,
    evicted: BTreeSet<usize>,
    threshold: u32,
    evict_after: u32,
}

impl FailureDetector {
    /// A detector initially tracking worker ids `0..workers` that suspects
    /// after `threshold` consecutive missed deadlines. Errors when
    /// `threshold == 0` (every worker would be suspected before its first
    /// deadline).
    pub fn new(workers: usize, threshold: u32) -> Result<Self, String> {
        if threshold == 0 {
            return Err("suspect threshold must be at least 1".to_string());
        }
        Ok(FailureDetector {
            misses: (0..workers).map(|w| (w, 0)).collect(),
            suspected: BTreeSet::new(),
            evicted: BTreeSet::new(),
            threshold,
            evict_after: 0,
        })
    }

    /// Enables permanent eviction: a suspected worker accumulating
    /// `evict_after` further consecutive misses (i.e. `threshold +
    /// evict_after` in total) is evicted for good. `0` disables eviction
    /// (the default) — suspicion then stays indefinitely reversible.
    pub fn with_eviction(mut self, evict_after: u32) -> Self {
        self.evict_after = evict_after;
        self
    }

    /// Starts tracking a newly joined worker (fresh miss streak).
    /// Re-tracking a known worker is a no-op; evicted ids stay evicted.
    pub fn track(&mut self, worker: usize) {
        if !self.evicted.contains(&worker) {
            self.misses.entry(worker).or_insert(0);
        }
    }

    /// Stops tracking a gracefully departed worker. Unlike eviction this
    /// carries no verdict: the id could be tracked again later.
    pub fn forget(&mut self, worker: usize) {
        self.misses.remove(&worker);
        self.suspected.remove(&worker);
    }

    /// Number of workers tracked (evicted workers included — their ids
    /// remain occupied).
    pub fn workers(&self) -> usize {
        self.misses.len()
    }

    /// Feeds "worker answered before its deadline". Untracked and evicted
    /// workers are ignored.
    pub fn heard(&mut self, worker: usize) -> Liveness {
        if self.evicted.contains(&worker) {
            return Liveness::Unchanged;
        }
        match self.misses.get_mut(&worker) {
            Some(m) => *m = 0,
            None => return Liveness::Unchanged,
        }
        if self.suspected.remove(&worker) {
            Liveness::Rejoined
        } else {
            Liveness::Unchanged
        }
    }

    /// Feeds "worker missed its deadline". Untracked and evicted workers
    /// are ignored.
    pub fn missed(&mut self, worker: usize) -> Liveness {
        if self.evicted.contains(&worker) {
            return Liveness::Unchanged;
        }
        let m = match self.misses.get_mut(&worker) {
            Some(m) => m,
            None => return Liveness::Unchanged,
        };
        *m = m.saturating_add(1);
        let streak = *m;
        if !self.suspected.contains(&worker) && streak >= self.threshold {
            self.suspected.insert(worker);
            Liveness::Suspected
        } else if self.suspected.contains(&worker)
            && self.evict_after > 0
            && streak >= self.threshold.saturating_add(self.evict_after)
        {
            self.evicted.insert(worker);
            Liveness::Evicted
        } else {
            Liveness::Unchanged
        }
    }

    /// Whether `worker` is currently suspected (evicted workers count as
    /// suspected, so existing skip-suspects filters exclude them too).
    pub fn is_suspected(&self, worker: usize) -> bool {
        self.suspected.contains(&worker)
    }

    /// Whether `worker` has been permanently evicted.
    pub fn is_evicted(&self, worker: usize) -> bool {
        self.evicted.contains(&worker)
    }

    /// Currently suspected worker ids, ascending (evicted included).
    pub fn suspected(&self) -> Vec<usize> {
        self.suspected.iter().copied().collect()
    }

    /// Permanently evicted worker ids, ascending.
    pub fn evicted(&self) -> Vec<usize> {
        self.evicted.iter().copied().collect()
    }

    /// Tracked, unsuspected worker ids, ascending.
    pub fn unsuspected(&self) -> Vec<usize> {
        self.misses
            .keys()
            .copied()
            .filter(|w| !self.suspected.contains(w))
            .collect()
    }

    /// Number of currently suspected workers (evicted included).
    pub fn suspected_count(&self) -> usize {
        self.suspected.len()
    }

    /// Number of permanently evicted workers.
    pub fn evicted_count(&self) -> usize {
        self.evicted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suspects_after_consecutive_misses_only() {
        let mut d = FailureDetector::new(3, 2).unwrap();
        assert_eq!(d.missed(1), Liveness::Unchanged);
        assert_eq!(d.heard(1), Liveness::Unchanged, "heard resets the streak");
        assert_eq!(d.missed(1), Liveness::Unchanged);
        assert_eq!(d.missed(1), Liveness::Suspected);
        assert!(d.is_suspected(1));
        assert_eq!(d.missed(1), Liveness::Unchanged, "no re-suspect");
        assert_eq!(d.suspected(), vec![1]);
        assert_eq!(d.unsuspected(), vec![0, 2]);
        assert_eq!(d.suspected_count(), 1);
    }

    #[test]
    fn rejoin_on_next_message() {
        let mut d = FailureDetector::new(2, 1).unwrap();
        assert_eq!(d.missed(0), Liveness::Suspected);
        assert_eq!(d.heard(0), Liveness::Rejoined);
        assert!(!d.is_suspected(0));
        // A fresh miss streak is needed to re-suspect.
        assert_eq!(d.missed(0), Liveness::Suspected);
    }

    #[test]
    fn zero_threshold_rejected() {
        let err = FailureDetector::new(2, 0).unwrap_err();
        assert!(err.contains("at least 1"), "got: {err}");
    }

    #[test]
    fn track_and_forget_follow_membership() {
        let mut d = FailureDetector::new(2, 1).unwrap();
        assert_eq!(d.workers(), 2);
        // A joiner appears with a fresh streak.
        d.track(5);
        assert_eq!(d.workers(), 3);
        assert_eq!(d.unsuspected(), vec![0, 1, 5]);
        assert_eq!(d.missed(5), Liveness::Suspected);
        // A graceful leaver disappears entirely.
        d.forget(5);
        assert_eq!(d.workers(), 2);
        assert!(!d.is_suspected(5));
        assert_eq!(d.missed(5), Liveness::Unchanged, "untracked ids ignored");
        // Untracked heard is a no-op too.
        assert_eq!(d.heard(9), Liveness::Unchanged);
    }

    #[test]
    fn eviction_is_permanent() {
        let mut d = FailureDetector::new(2, 2).unwrap().with_eviction(2);
        assert_eq!(d.missed(0), Liveness::Unchanged);
        assert_eq!(d.missed(0), Liveness::Suspected);
        assert_eq!(d.missed(0), Liveness::Unchanged, "one miss into timeout");
        assert_eq!(d.missed(0), Liveness::Evicted);
        assert!(d.is_evicted(0));
        assert!(d.is_suspected(0), "evicted stays in the suspect filter");
        assert_eq!(d.evicted(), vec![0]);
        assert_eq!(d.evicted_count(), 1);
        // No resurrection: late messages and further misses are ignored.
        assert_eq!(d.heard(0), Liveness::Unchanged);
        assert!(d.is_evicted(0));
        assert_eq!(d.missed(0), Liveness::Unchanged);
        // Tracking the id again does not clear the verdict.
        d.track(0);
        assert!(d.is_evicted(0));
        assert_eq!(d.unsuspected(), vec![1]);
    }

    #[test]
    fn eviction_disabled_by_default() {
        let mut d = FailureDetector::new(1, 1).unwrap();
        for _ in 0..100 {
            let l = d.missed(0);
            assert_ne!(l, Liveness::Evicted);
        }
        assert!(!d.is_evicted(0));
        assert_eq!(d.heard(0), Liveness::Rejoined, "still reversible");
    }

    #[test]
    fn suspicion_survives_membership_growth() {
        // The regression the map-keyed storage fixes: ids beyond the
        // construction-time count must not panic.
        let mut d = FailureDetector::new(2, 1).unwrap();
        assert_eq!(d.missed(7), Liveness::Unchanged, "unknown id, no panic");
        d.track(7);
        assert_eq!(d.missed(7), Liveness::Suspected);
        assert_eq!(d.suspected(), vec![7]);
    }
}
