//! Timeout-based failure detection.
//!
//! The MD-GAN server has no crash oracle in robust mode: the only liveness
//! signal is whether a worker's feedback made it back before the gather
//! deadline. [`FailureDetector`] turns that signal into a suspicion list —
//! suspect after `threshold` *consecutive* misses, rejoin the moment the
//! worker is heard again. This is the classic unreliable failure detector:
//! suspicion is a routing hint (skip the worker's downlink, keep it out of
//! discriminator swaps), never a verdict, so a slow-but-alive worker only
//! loses iterations, not its shard.

/// Outcome of feeding one observation to the detector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Liveness {
    /// No state transition.
    Unchanged,
    /// The worker just crossed the miss threshold and is now suspected.
    Suspected,
    /// A previously suspected worker was heard from again.
    Rejoined,
}

/// Per-worker consecutive-miss tracking over `0..workers` worker indices.
#[derive(Clone, Debug)]
pub struct FailureDetector {
    misses: Vec<u32>,
    suspected: Vec<bool>,
    threshold: u32,
}

impl FailureDetector {
    /// A detector over `workers` workers that suspects after `threshold`
    /// consecutive missed deadlines (`threshold ≥ 1`).
    pub fn new(workers: usize, threshold: u32) -> Self {
        assert!(threshold >= 1, "suspect threshold must be at least 1");
        FailureDetector {
            misses: vec![0; workers],
            suspected: vec![false; workers],
            threshold,
        }
    }

    /// Number of workers tracked.
    pub fn workers(&self) -> usize {
        self.misses.len()
    }

    /// Feeds "worker answered before its deadline".
    pub fn heard(&mut self, worker: usize) -> Liveness {
        self.misses[worker] = 0;
        if std::mem::replace(&mut self.suspected[worker], false) {
            Liveness::Rejoined
        } else {
            Liveness::Unchanged
        }
    }

    /// Feeds "worker missed its deadline".
    pub fn missed(&mut self, worker: usize) -> Liveness {
        self.misses[worker] = self.misses[worker].saturating_add(1);
        if !self.suspected[worker] && self.misses[worker] >= self.threshold {
            self.suspected[worker] = true;
            Liveness::Suspected
        } else {
            Liveness::Unchanged
        }
    }

    /// Whether `worker` is currently suspected.
    pub fn is_suspected(&self, worker: usize) -> bool {
        self.suspected[worker]
    }

    /// Currently suspected worker indices, ascending.
    pub fn suspected(&self) -> Vec<usize> {
        (0..self.workers()).filter(|&w| self.suspected[w]).collect()
    }

    /// Currently unsuspected worker indices, ascending.
    pub fn unsuspected(&self) -> Vec<usize> {
        (0..self.workers())
            .filter(|&w| !self.suspected[w])
            .collect()
    }

    /// Number of currently suspected workers.
    pub fn suspected_count(&self) -> usize {
        self.suspected.iter().filter(|&&s| s).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suspects_after_consecutive_misses_only() {
        let mut d = FailureDetector::new(3, 2);
        assert_eq!(d.missed(1), Liveness::Unchanged);
        assert_eq!(d.heard(1), Liveness::Unchanged, "heard resets the streak");
        assert_eq!(d.missed(1), Liveness::Unchanged);
        assert_eq!(d.missed(1), Liveness::Suspected);
        assert!(d.is_suspected(1));
        assert_eq!(d.missed(1), Liveness::Unchanged, "no re-suspect");
        assert_eq!(d.suspected(), vec![1]);
        assert_eq!(d.unsuspected(), vec![0, 2]);
        assert_eq!(d.suspected_count(), 1);
    }

    #[test]
    fn rejoin_on_next_message() {
        let mut d = FailureDetector::new(2, 1);
        assert_eq!(d.missed(0), Liveness::Suspected);
        assert_eq!(d.heard(0), Liveness::Rejoined);
        assert!(!d.is_suspected(0));
        // A fresh miss streak is needed to re-suspect.
        assert_eq!(d.missed(0), Liveness::Suspected);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_threshold_rejected() {
        FailureDetector::new(2, 0);
    }
}
