//! Dynamic cluster membership: epoch-numbered views and seeded churn.
//!
//! The paper trains on a *fixed* star of `N` discriminators; this module
//! generalizes that to a cluster whose alive set changes mid-run. Two
//! pieces:
//!
//! * [`ChurnPlan`] — a deterministic schedule of join / graceful-leave /
//!   crash events, either written out explicitly
//!   ([`from_events`](ChurnPlan::from_events)) or generated from a seed
//!   ([`seeded`](ChurnPlan::seeded)) with the same SplitMix64 fate-stream
//!   design as [`FaultPlan`](crate::FaultPlan), so every runtime consuming
//!   the same plan sees the exact same membership history.
//! * [`Membership`] — the server's view of the cluster: one
//!   [`MemberStatus`] per worker slot plus an epoch counter that bumps on
//!   every transition. The alive view at a given epoch drives the k-batch
//!   SPLIT and the discriminator-swap schedule.
//!
//! Worker ids are 1-based (`1..=N`, node 0 is the server) to match
//! [`CrashSchedule`](crate::CrashSchedule); [`Membership`] methods take
//! 0-based *slots* (`id - 1`) to match the core crate's worker indexing.
//!
//! Ordering contract: within one iteration, crashes apply first, then
//! joins, while graceful leaves take effect at the *end* of the iteration
//! (the leaver drains: it computes and reports one final feedback before
//! departing). [`ChurnPlan`] stores events pre-sorted in that order.

use crate::fault::splitmix;

/// What happens to a worker at a churn event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ChurnKind {
    /// A crashed worker disappears at the start of the iteration without
    /// contributing anything.
    Crash,
    /// A new worker appears at the start of the iteration, bootstraps its
    /// discriminator, and contributes feedback that same iteration.
    Join,
    /// A graceful leave: the worker participates fully in the event's
    /// iteration (drain + final feedback) and departs at its end.
    Leave,
}

impl ChurnKind {
    fn rank(self) -> u8 {
        match self {
            ChurnKind::Crash => 0,
            ChurnKind::Join => 1,
            ChurnKind::Leave => 2,
        }
    }
}

/// One membership transition at a given training iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Training iteration (0-based) the event fires at.
    pub iter: usize,
    /// Worker id, 1-based (node 0 is the server).
    pub worker: usize,
    /// The transition.
    pub kind: ChurnKind,
}

/// A deterministic membership schedule.
///
/// Like [`FaultPlan`](crate::FaultPlan), a plan is pure data computed
/// up-front: every runtime handed the same plan replays the same joins,
/// leaves, and crashes at the same iterations, which is what makes the
/// sequential and threaded runtimes bit-identical under churn.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ChurnPlan {
    seed: u64,
    events: Vec<ChurnEvent>,
}

impl ChurnPlan {
    /// The empty plan: membership never changes.
    pub fn none() -> Self {
        ChurnPlan::default()
    }

    /// Whether this plan contains no events.
    pub fn is_none(&self) -> bool {
        self.events.is_empty()
    }

    /// Builds a plan from explicit events.
    ///
    /// Events are sorted into canonical order (iteration, then crash <
    /// join < leave, then worker id) and validated against `initial`
    /// workers: joiner ids must be dense above `initial`, no worker joins
    /// or departs twice, and a joiner's departure must come after its
    /// join.
    pub fn from_events(initial: usize, events: Vec<ChurnEvent>) -> Result<Self, String> {
        let mut events = events;
        events.sort_by_key(|e| (e.iter, e.kind.rank(), e.worker));
        let joins: Vec<usize> = events
            .iter()
            .filter(|e| e.kind == ChurnKind::Join)
            .map(|e| e.worker)
            .collect();
        for (j, &id) in joins.iter().enumerate() {
            let want = initial + 1 + j;
            if id != want {
                return Err(format!(
                    "join #{} has worker id {}, expected dense id {} (initial = {})",
                    j, id, want, initial
                ));
            }
        }
        let total = initial + joins.len();
        let mut joined_at = vec![None; total];
        let mut departed = vec![false; total];
        for ev in &events {
            if ev.worker == 0 || ev.worker > total {
                return Err(format!(
                    "event {:?} targets worker {} outside 1..={}",
                    ev.kind, ev.worker, total
                ));
            }
            let slot = ev.worker - 1;
            match ev.kind {
                ChurnKind::Join => {
                    if slot < initial {
                        return Err(format!("worker {} is initial, it cannot join", ev.worker));
                    }
                    joined_at[slot] = Some(ev.iter);
                }
                ChurnKind::Leave | ChurnKind::Crash => {
                    if departed[slot] {
                        return Err(format!("worker {} departs twice", ev.worker));
                    }
                    if slot >= initial {
                        match joined_at[slot] {
                            // A joiner may depart the same iteration at the
                            // earliest (join applies first by rank order).
                            Some(j) if j <= ev.iter => {}
                            _ => {
                                return Err(format!(
                                    "worker {} departs at iter {} before joining",
                                    ev.worker, ev.iter
                                ));
                            }
                        }
                    }
                    departed[slot] = true;
                }
            }
        }
        Ok(ChurnPlan { seed: 0, events })
    }

    /// Generates a plan from a seed: per iteration in `1..iters`, at most
    /// one crash, one join, and one graceful leave, each fired with the
    /// given per-iteration probability. Leave/crash victims are drawn from
    /// the set alive at that point of the schedule (never below one
    /// survivor); joiner ids are dense above `initial`.
    ///
    /// The draw is a pure SplitMix64 stream over `(seed, iter, stream)`,
    /// mirroring [`FaultPlan::fate`](crate::FaultPlan::fate): the same
    /// seed always yields the same plan.
    pub fn seeded(
        seed: u64,
        initial: usize,
        iters: usize,
        join_rate: f64,
        leave_rate: f64,
        crash_rate: f64,
    ) -> Self {
        let mut events = Vec::new();
        let mut alive: Vec<usize> = (1..=initial).collect();
        let mut next_id = initial + 1;
        for iter in 1..iters {
            if unit(draw(seed, iter, 0)) < crash_rate && alive.len() > 1 {
                let victim = alive.remove(draw(seed, iter, 1) as usize % alive.len());
                events.push(ChurnEvent {
                    iter,
                    worker: victim,
                    kind: ChurnKind::Crash,
                });
            }
            if unit(draw(seed, iter, 2)) < join_rate {
                events.push(ChurnEvent {
                    iter,
                    worker: next_id,
                    kind: ChurnKind::Join,
                });
                alive.push(next_id);
                alive.sort_unstable();
                next_id += 1;
            }
            if unit(draw(seed, iter, 3)) < leave_rate && alive.len() > 1 {
                let victim = alive.remove(draw(seed, iter, 4) as usize % alive.len());
                events.push(ChurnEvent {
                    iter,
                    worker: victim,
                    kind: ChurnKind::Leave,
                });
            }
        }
        events.sort_by_key(|e| (e.iter, e.kind.rank(), e.worker));
        ChurnPlan { seed, events }
    }

    /// The seed the plan was generated from (0 for explicit plans).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All events in canonical order.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Events firing at `iter`, in canonical (crash, join, leave) order.
    pub fn events_at(&self, iter: usize) -> impl Iterator<Item = &ChurnEvent> {
        self.events.iter().filter(move |e| e.iter == iter)
    }

    /// Number of events of a kind.
    pub fn count(&self, kind: ChurnKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Number of join events (each adds one worker slot to the universe).
    pub fn joins(&self) -> usize {
        self.count(ChurnKind::Join)
    }

    /// Total worker slots a run starting with `initial` workers needs:
    /// every joiner is pre-allocated a slot so its model/RNG state can be
    /// constructed identically on every runtime.
    pub fn max_workers(&self, initial: usize) -> usize {
        initial + self.joins()
    }
}

/// One draw from the plan's fate stream.
fn draw(seed: u64, iter: usize, stream: u64) -> u64 {
    let s = splitmix(seed ^ stream.wrapping_mul(0x00C4_EC11));
    splitmix(s ^ (iter as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Maps a hash to a uniform f64 in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Lifecycle state of one worker slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemberStatus {
    /// Slot reserved for a joiner that has not arrived yet.
    Pending,
    /// Participating in training.
    Alive,
    /// Departed gracefully (drained, final feedback delivered).
    Left,
    /// Fail-stop crashed (oracle knowledge).
    Crashed,
    /// Permanently removed by the failure detector after sustained
    /// suspicion — never rejoins.
    Evicted,
}

impl MemberStatus {
    fn as_word(self) -> u64 {
        match self {
            MemberStatus::Pending => 0,
            MemberStatus::Alive => 1,
            MemberStatus::Left => 2,
            MemberStatus::Crashed => 3,
            MemberStatus::Evicted => 4,
        }
    }

    fn from_word(w: u64) -> Result<Self, String> {
        Ok(match w {
            0 => MemberStatus::Pending,
            1 => MemberStatus::Alive,
            2 => MemberStatus::Left,
            3 => MemberStatus::Crashed,
            4 => MemberStatus::Evicted,
            _ => return Err(format!("unknown member status word {w}")),
        })
    }
}

/// The server's epoch-numbered view of cluster membership.
///
/// Slots are 0-based worker indices over the full universe (`initial`
/// workers plus every planned joiner). The epoch bumps on every
/// transition, so two views are interchangeable iff their epochs match.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Membership {
    status: Vec<MemberStatus>,
    epoch: u64,
}

impl Membership {
    /// A view with `initial` alive workers and `total - initial` pending
    /// joiner slots, at epoch 0.
    pub fn new(initial: usize, total: usize) -> Self {
        assert!(initial <= total, "initial {initial} exceeds total {total}");
        let mut status = vec![MemberStatus::Alive; initial];
        status.resize(total, MemberStatus::Pending);
        Membership { status, epoch: 0 }
    }

    /// The view a run of `initial` workers under `plan` starts from.
    pub fn for_plan(initial: usize, plan: &ChurnPlan) -> Self {
        Membership::new(initial, plan.max_workers(initial))
    }

    /// Total slots (alive or not).
    pub fn len(&self) -> usize {
        self.status.len()
    }

    /// Whether the view has no slots.
    pub fn is_empty(&self) -> bool {
        self.status.is_empty()
    }

    /// Current view epoch (number of transitions applied).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Status of a slot.
    pub fn status(&self, slot: usize) -> MemberStatus {
        self.status[slot]
    }

    /// Whether a slot is currently alive.
    pub fn is_alive(&self, slot: usize) -> bool {
        self.status[slot] == MemberStatus::Alive
    }

    /// Ascending 0-based slots of alive workers — the view the SPLIT and
    /// swap schedules are computed over.
    pub fn alive(&self) -> Vec<usize> {
        (0..self.len()).filter(|&s| self.is_alive(s)).collect()
    }

    /// Number of alive workers.
    pub fn alive_count(&self) -> usize {
        self.status
            .iter()
            .filter(|&&s| s == MemberStatus::Alive)
            .count()
    }

    /// Applies one churn event (worker id 1-based). Errors when the
    /// transition is invalid for the slot's current status.
    pub fn apply(&mut self, ev: &ChurnEvent) -> Result<(), String> {
        if ev.worker == 0 || ev.worker > self.len() {
            return Err(format!(
                "churn event targets worker {} outside 1..={}",
                ev.worker,
                self.len()
            ));
        }
        let slot = ev.worker - 1;
        let cur = self.status[slot];
        let next = match (ev.kind, cur) {
            (ChurnKind::Join, MemberStatus::Pending) => MemberStatus::Alive,
            (ChurnKind::Leave, MemberStatus::Alive) => MemberStatus::Left,
            (ChurnKind::Crash, MemberStatus::Alive) => MemberStatus::Crashed,
            _ => {
                return Err(format!(
                    "cannot apply {:?} to worker {} in status {:?}",
                    ev.kind, ev.worker, cur
                ));
            }
        };
        self.status[slot] = next;
        self.epoch += 1;
        Ok(())
    }

    /// Marks a slot crashed outside a plan (the legacy
    /// [`CrashSchedule`](crate::CrashSchedule) path). Returns whether the
    /// view changed.
    pub fn crash(&mut self, slot: usize) -> bool {
        if self.status[slot] == MemberStatus::Alive {
            self.status[slot] = MemberStatus::Crashed;
            self.epoch += 1;
            true
        } else {
            false
        }
    }

    /// Permanently evicts a slot (detector-driven). Idempotent; workers
    /// that already departed stay in their terminal state. Returns whether
    /// the view changed.
    pub fn evict(&mut self, slot: usize) -> bool {
        match self.status[slot] {
            MemberStatus::Alive | MemberStatus::Pending | MemberStatus::Crashed => {
                self.status[slot] = MemberStatus::Evicted;
                self.epoch += 1;
                true
            }
            MemberStatus::Left | MemberStatus::Evicted => false,
        }
    }

    /// Flattens the view for checkpointing: `[total, epoch, status×total]`.
    pub fn state_words(&self) -> Vec<u64> {
        let mut w = Vec::with_capacity(2 + self.len());
        w.push(self.len() as u64);
        w.push(self.epoch);
        w.extend(self.status.iter().map(|s| s.as_word()));
        w
    }

    /// Restores a view captured by [`state_words`](Self::state_words).
    pub fn load_state_words(&mut self, words: &[u64]) -> Result<(), String> {
        if words.len() < 2 || words[0] as usize != self.len() || words.len() != 2 + self.len() {
            return Err(format!(
                "membership words for {} slots / {} words, expected {} slots / {} words",
                words.first().copied().unwrap_or(0),
                words.len(),
                self.len(),
                2 + self.len()
            ));
        }
        let mut status = Vec::with_capacity(self.len());
        for &w in &words[2..] {
            status.push(MemberStatus::from_word(w)?);
        }
        self.epoch = words[1];
        self.status = status;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(iter: usize, worker: usize, kind: ChurnKind) -> ChurnEvent {
        ChurnEvent { iter, worker, kind }
    }

    #[test]
    fn explicit_plan_sorts_and_validates() {
        let plan = ChurnPlan::from_events(
            2,
            vec![
                ev(5, 3, ChurnKind::Join),
                ev(5, 1, ChurnKind::Crash),
                ev(8, 3, ChurnKind::Leave),
            ],
        )
        .unwrap();
        // Crash sorts before join at the same iteration.
        assert_eq!(plan.events()[0].kind, ChurnKind::Crash);
        assert_eq!(plan.events()[1].kind, ChurnKind::Join);
        assert_eq!(plan.joins(), 1);
        assert_eq!(plan.max_workers(2), 3);
        assert_eq!(plan.events_at(5).count(), 2);
        assert!(!plan.is_none());
        assert!(ChurnPlan::none().is_none());
    }

    #[test]
    fn explicit_plan_rejects_bad_schedules() {
        // Non-dense joiner id.
        assert!(ChurnPlan::from_events(2, vec![ev(1, 5, ChurnKind::Join)]).is_err());
        // Initial worker "joining".
        assert!(ChurnPlan::from_events(2, vec![ev(1, 2, ChurnKind::Join)]).is_err());
        // Departure before join.
        assert!(ChurnPlan::from_events(
            2,
            vec![ev(1, 3, ChurnKind::Leave), ev(4, 3, ChurnKind::Join)]
        )
        .is_err());
        // Double departure.
        assert!(ChurnPlan::from_events(
            2,
            vec![ev(1, 1, ChurnKind::Leave), ev(2, 1, ChurnKind::Crash)]
        )
        .is_err());
        // Worker id 0 is the server.
        assert!(ChurnPlan::from_events(2, vec![ev(1, 0, ChurnKind::Crash)]).is_err());
    }

    #[test]
    fn seeded_plan_is_deterministic_and_valid() {
        let a = ChurnPlan::seeded(7, 8, 64, 0.2, 0.1, 0.2);
        let b = ChurnPlan::seeded(7, 8, 64, 0.2, 0.1, 0.2);
        assert_eq!(a, b, "same seed, same plan");
        let c = ChurnPlan::seeded(8, 8, 64, 0.2, 0.1, 0.2);
        assert_ne!(a, c, "different seed, different plan");
        // The generated schedule must be self-consistent: replay it.
        let reparsed = ChurnPlan::from_events(8, a.events().to_vec()).unwrap();
        assert_eq!(reparsed.events(), a.events());
        let mut m = Membership::for_plan(8, &a);
        for iter in 0..64 {
            for ev in a.events().iter().filter(|e| e.iter == iter) {
                m.apply(ev).unwrap();
            }
            assert!(m.alive_count() >= 1, "never below one survivor");
        }
    }

    #[test]
    fn seeded_zero_rates_is_empty() {
        assert!(ChurnPlan::seeded(7, 8, 64, 0.0, 0.0, 0.0).is_none());
    }

    #[test]
    fn membership_transitions_bump_epoch() {
        let mut m = Membership::new(2, 3);
        assert_eq!(m.alive(), vec![0, 1]);
        assert_eq!(m.epoch(), 0);
        assert_eq!(m.status(2), MemberStatus::Pending);
        m.apply(&ev(3, 3, ChurnKind::Join)).unwrap();
        assert_eq!(m.alive(), vec![0, 1, 2]);
        assert_eq!(m.epoch(), 1);
        m.apply(&ev(4, 1, ChurnKind::Crash)).unwrap();
        assert_eq!(m.alive(), vec![1, 2]);
        m.apply(&ev(5, 2, ChurnKind::Leave)).unwrap();
        assert_eq!(m.alive(), vec![2]);
        assert_eq!(m.epoch(), 3);
        // Invalid transitions are rejected and leave the view unchanged.
        assert!(m.apply(&ev(6, 1, ChurnKind::Crash)).is_err());
        assert!(m.apply(&ev(6, 3, ChurnKind::Join)).is_err());
        assert!(m.apply(&ev(6, 9, ChurnKind::Crash)).is_err());
        assert_eq!(m.epoch(), 3);
    }

    #[test]
    fn evict_is_permanent_and_idempotent() {
        let mut m = Membership::new(3, 3);
        assert!(m.evict(1));
        assert_eq!(m.status(1), MemberStatus::Evicted);
        assert!(!m.evict(1), "second evict is a no-op");
        assert_eq!(m.epoch(), 1);
        // A graceful leaver is not retroactively evicted.
        m.apply(&ev(1, 3, ChurnKind::Leave)).unwrap();
        assert!(!m.evict(2));
        assert_eq!(m.status(2), MemberStatus::Left);
        // A crashed worker can still be evicted (suspicion confirmed).
        assert!(m.crash(0));
        assert!(m.evict(0));
        assert_eq!(m.alive(), Vec::<usize>::new());
    }

    #[test]
    fn state_words_roundtrip() {
        let mut m = Membership::new(2, 4);
        m.apply(&ev(1, 3, ChurnKind::Join)).unwrap();
        m.crash(0);
        m.evict(1);
        let words = m.state_words();
        let mut fresh = Membership::new(2, 4);
        fresh.load_state_words(&words).unwrap();
        assert_eq!(fresh, m);
        let mut wrong = Membership::new(2, 5);
        assert!(wrong.load_state_words(&words).is_err());
        assert!(fresh.load_state_words(&words[..2]).is_err());
        let mut bad = words.clone();
        bad[2] = 99;
        assert!(fresh.load_state_words(&bad).is_err());
    }
}
