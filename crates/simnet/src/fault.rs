//! Fault injection: fail-stop crashes (paper §V-B.3) and lossy-network
//! faults (drops, duplication, bounded delay, partitions).
//!
//! Two layers live here:
//!
//! * [`CrashSchedule`] — the paper's *oracle* crash model: a predetermined
//!   `(iteration, worker)` list every node can consult. A crashed worker
//!   leaves the computation *and its data shard disappears*.
//! * [`FaultPlan`] / [`FaultState`] — a seeded, deterministic model of an
//!   imperfect network. Every data-carrying send draws a [`Fate`] from a
//!   pure hash of `(seed, from, to, per-link sequence number)`, so the
//!   *same* faults hit the *same* logical messages no matter which runtime
//!   (sequential, threaded, async) replays the plan or how OS threads
//!   interleave. Nothing here consults a clock.

use crate::stats::TrafficStats;
use md_telemetry::{Counter, Recorder, SpanKind, TraceCtx, Track};
use md_tensor::rng::Rng64;
use std::sync::atomic::{AtomicU64, Ordering};

/// A predetermined schedule of worker crashes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrashSchedule {
    /// `(iteration, worker_id)` pairs, sorted by iteration. The worker is
    /// considered dead *from* that global iteration (inclusive).
    events: Vec<(usize, usize)>,
    /// Per-worker crash iteration, indexed by worker id (a worker crashes
    /// at most once, so one `Option` per id suffices). Precomputed so the
    /// per-iteration liveness checks are O(1) instead of O(events).
    crash_at: Vec<Option<usize>>,
}

impl CrashSchedule {
    /// No crashes.
    pub fn none() -> Self {
        CrashSchedule::default()
    }

    /// Explicit schedule.
    ///
    /// # Panics
    /// Panics if a worker crashes twice.
    pub fn new(mut events: Vec<(usize, usize)>) -> Self {
        events.sort_unstable();
        let max_worker = events.iter().map(|&(_, w)| w).max().unwrap_or(0);
        let mut crash_at: Vec<Option<usize>> = vec![None; max_worker + 1];
        for &(at, w) in &events {
            assert!(crash_at[w].is_none(), "a worker crashes twice");
            crash_at[w] = Some(at);
        }
        CrashSchedule { events, crash_at }
    }

    /// The paper's Figure 5 pattern: one worker crashes every
    /// `total_iters / workers` iterations, in a random order, so that by
    /// `total_iters` every worker has crashed.
    pub fn every_quantile(total_iters: usize, workers: usize, rng: &mut Rng64) -> Self {
        assert!(workers > 0);
        let interval = (total_iters / workers).max(1);
        let order = rng.permutation(workers);
        let events = order
            .into_iter()
            .enumerate()
            .map(|(k, w)| ((k + 1) * interval, w + 1)) // worker ids are 1-based
            .collect();
        CrashSchedule::new(events)
    }

    /// All crash events, sorted by iteration.
    pub fn events(&self) -> &[(usize, usize)] {
        &self.events
    }

    /// The iteration `worker` crashes at, if it ever does.
    pub fn crash_iter(&self, worker: usize) -> Option<usize> {
        self.crash_at.get(worker).copied().flatten()
    }

    /// True iff `worker` is dead at global iteration `iter`.
    pub fn is_crashed(&self, worker: usize, iter: usize) -> bool {
        self.crash_iter(worker).is_some_and(|at| iter >= at)
    }

    /// Worker ids still alive at `iter` out of `1..=workers`.
    pub fn alive_at(&self, workers: usize, iter: usize) -> Vec<usize> {
        (1..=workers)
            .filter(|&w| !self.is_crashed(w, iter))
            .collect()
    }

    /// Number of crashes that have happened strictly before or at `iter`.
    pub fn crashed_count(&self, iter: usize) -> usize {
        self.events.iter().filter(|&&(at, _)| iter >= at).count()
    }
}

/// What the simulated network does with one send attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fate {
    /// Delivered intact.
    Deliver,
    /// Lost. The sender never learns why.
    Drop,
    /// Delivered, plus a spurious second copy (the transport layer dedups
    /// it at the receiver, but the bytes moved).
    Duplicate,
    /// Delivered after `ticks ≥ 1` virtual ticks of extra latency.
    ///
    /// One tick is one global iteration. The synchronous runtimes gather
    /// feedbacks at a barrier and sort them by sender, so a sub-deadline
    /// delay reorders nothing observable; it is *counted* (the message was
    /// late on the wire) but delivered in place. Delays long enough to
    /// matter are what the drop probability models.
    Delay {
        /// Extra latency in virtual ticks.
        ticks: u32,
    },
}

/// What a partition covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionScope {
    /// One direction of one link.
    Link {
        /// Sending node.
        from: usize,
        /// Receiving node.
        to: usize,
    },
    /// Every link touching this node (both directions).
    Node(usize),
}

/// A network partition over a half-open window of virtual ticks
/// (`[start, end)`, one tick = one global iteration). Every send crossing
/// the partition during the window is dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Partition {
    /// What is cut off.
    pub scope: PartitionScope,
    /// First tick the partition is active (inclusive).
    pub start: u64,
    /// First tick the partition is healed (exclusive).
    pub end: u64,
}

impl Partition {
    /// A one-directional link partition over `[start, end)`.
    pub fn link(from: usize, to: usize, start: u64, end: u64) -> Self {
        Partition {
            scope: PartitionScope::Link { from, to },
            start,
            end,
        }
    }

    /// A node partition (all links touching `node`) over `[start, end)`.
    pub fn node(node: usize, start: u64, end: u64) -> Self {
        Partition {
            scope: PartitionScope::Node(node),
            start,
            end,
        }
    }

    fn cuts(&self, from: usize, to: usize, tick: u64) -> bool {
        if tick < self.start || tick >= self.end {
            return false;
        }
        match self.scope {
            PartitionScope::Link { from: f, to: t } => f == from && t == to,
            PartitionScope::Node(n) => n == from || n == to,
        }
    }
}

/// A seeded, deterministic description of an imperfect network.
///
/// Fates are a pure function of `(seed, from, to, link sequence number)`
/// plus the partition windows (checked against the sender's virtual tick),
/// so a plan replays identically across runtimes and thread interleavings.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Fate-stream seed.
    pub seed: u64,
    /// Per-attempt drop probability in `[0, 1]`.
    pub drop: f32,
    /// Per-attempt duplication probability.
    pub duplicate: f32,
    /// Per-attempt delay probability.
    pub delay: f32,
    /// Upper bound on injected delay, in virtual ticks (≥ 1 when `delay`
    /// is non-zero).
    pub max_delay_ticks: u32,
    /// Link/node partitions over iteration windows.
    pub partitions: Vec<Partition>,
}

impl FaultPlan {
    /// A perfect network (the default).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plain lossy network: `drop` probability, no duplication, no
    /// delays, no partitions.
    pub fn lossy(seed: u64, drop: f32) -> Self {
        FaultPlan {
            seed,
            drop,
            ..FaultPlan::default()
        }
    }

    /// True iff the plan can never inject a fault.
    pub fn is_none(&self) -> bool {
        self.drop <= 0.0 && self.duplicate <= 0.0 && self.delay <= 0.0 && self.partitions.is_empty()
    }

    /// The fate of send attempt `seq` on link `from → to` at virtual tick
    /// `tick`. Pure: same inputs, same fate, on every runtime.
    pub fn fate(&self, from: usize, to: usize, seq: u64, tick: u64) -> Fate {
        if self.partitions.iter().any(|p| p.cuts(from, to, tick)) {
            return Fate::Drop;
        }
        if self.drop <= 0.0 && self.duplicate <= 0.0 && self.delay <= 0.0 {
            return Fate::Deliver;
        }
        let link = splitmix(self.seed ^ splitmix(((from as u64) << 32) ^ to as u64 ^ 0x11CC));
        let h = splitmix(link ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // 53 uniform bits → [0, 1).
        let r = (h >> 11) as f64 / (1u64 << 53) as f64;
        let p_drop = f64::from(self.drop.clamp(0.0, 1.0));
        let p_dup = f64::from(self.duplicate.clamp(0.0, 1.0));
        let p_delay = f64::from(self.delay.clamp(0.0, 1.0));
        if r < p_drop {
            Fate::Drop
        } else if r < p_drop + p_dup {
            Fate::Duplicate
        } else if r < p_drop + p_dup + p_delay {
            let span = self.max_delay_ticks.max(1) as u64;
            Fate::Delay {
                ticks: 1 + (splitmix(h) % span) as u32,
            }
        } else {
            Fate::Deliver
        }
    }
}

/// SplitMix64 finalizer — the fate hash (shared with the churn-plan
/// generator in [`crate::membership`]).
pub(crate) fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The outcome of one *logical* data send (after bounded retransmission).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// The payload reached the receiver.
    pub delivered: bool,
    /// A spurious duplicate copy also reached the receiver.
    pub duplicated: bool,
    /// The delivered copy was late on the wire.
    pub delayed: bool,
    /// Send attempts consumed (1 + retransmissions).
    pub attempts: u32,
}

/// A [`FaultPlan`] instantiated for a cluster: per-link sequence counters
/// that hand every attempt its own fate draw.
///
/// The counters are atomics so the threaded runtime can share one state
/// across node threads; each link has a single sender, so its sequence is
/// still consumed in a deterministic order.
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    nodes: usize,
    seqs: Vec<AtomicU64>,
}

impl FaultState {
    /// Instantiates `plan` for a cluster of `nodes` nodes (server
    /// included).
    pub fn new(plan: FaultPlan, nodes: usize) -> Self {
        FaultState {
            plan,
            nodes,
            seqs: (0..nodes * nodes).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Draws the fate of the next attempt on link `from → to`.
    pub fn next_fate(&self, from: usize, to: usize, tick: u64) -> Fate {
        let seq = self.seqs[from * self.nodes + to].fetch_add(1, Ordering::Relaxed);
        self.plan.fate(from, to, seq, tick)
    }

    /// Resolves one logical data send with a simulated stop-and-wait
    /// ack/retry loop: up to `1 + retries` attempts, each drawing its own
    /// fate and charging its own wire bytes. All fault accounting — sent /
    /// dropped / duplicated / delayed / retry counters in `stats` and
    /// `telemetry` — happens here, so every runtime charges identically.
    ///
    /// `deliver` is invoked once per copy that reaches the receiver: the
    /// first argument marks spurious duplicates, the second is the trace
    /// span id of the delivering send attempt (`0` when untraced); callers
    /// enqueue or apply the payload there. Injected delays are counted but
    /// delivered in place — see [`Fate::Delay`] for why that is sound at
    /// the runtimes' barriers.
    ///
    /// When `ctx` carries a trace and `telemetry` has tracing enabled,
    /// every attempt records an instant span on the sender's track:
    /// dropped attempts as `drop`, retransmissions as `retry` chained to
    /// the drop they replace, the delivering attempt as `send`/`retry`
    /// whose span id rides to the receiver — so a dropped-then-retried
    /// message exports as a linked causal chain.
    #[allow(clippy::too_many_arguments)]
    pub fn transmit(
        &self,
        from: usize,
        to: usize,
        tick: u64,
        bytes: u64,
        retries: u32,
        stats: &TrafficStats,
        telemetry: Option<&Recorder>,
        ctx: TraceCtx,
        mut deliver: impl FnMut(bool, u64),
    ) -> Delivery {
        let track = Track::node(from);
        // The causal chain through the retry loop: attempt N hangs off
        // attempt N-1's span (the drop it answers); attempt 1 hangs off
        // the caller's context.
        let mut link = ctx;
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            stats.record_attempt(from, to, bytes);
            if let Some(t) = telemetry {
                t.incr(Counter::MsgsSent, 1);
                t.incr(Counter::BytesSent, bytes);
            }
            match self.next_fate(from, to, tick) {
                Fate::Drop => {
                    stats.record_dropped(bytes);
                    if let Some(t) = telemetry {
                        t.incr(Counter::MsgsDropped, 1);
                        let dropped = t.trace_instant(
                            SpanKind::Dropped {
                                to: to as u32,
                                attempt: attempts,
                            },
                            track,
                            link,
                            tick,
                        );
                        if dropped != 0 {
                            link = TraceCtx {
                                trace: link.trace,
                                span: dropped,
                            };
                        }
                    }
                    if attempts <= retries {
                        stats.record_retry();
                        if let Some(t) = telemetry {
                            t.incr(Counter::Retries, 1);
                        }
                        continue;
                    }
                    return Delivery {
                        delivered: false,
                        duplicated: false,
                        delayed: false,
                        attempts,
                    };
                }
                fate @ (Fate::Deliver | Fate::Duplicate | Fate::Delay { .. }) => {
                    stats.record_delivery(to, bytes);
                    let sent = telemetry.map_or(0, |t| {
                        t.trace_instant(
                            SpanKind::Send {
                                to: to as u32,
                                bytes,
                                attempt: attempts,
                            },
                            track,
                            link,
                            tick,
                        )
                    });
                    deliver(false, sent);
                    let duplicated = fate == Fate::Duplicate;
                    let delayed = matches!(fate, Fate::Delay { .. });
                    if duplicated {
                        stats.record_duplicated(bytes);
                        if let Some(t) = telemetry {
                            t.incr(Counter::MsgsDuplicated, 1);
                            t.trace_instant(
                                SpanKind::Dup { to: to as u32 },
                                track,
                                TraceCtx {
                                    trace: link.trace,
                                    span: sent,
                                },
                                tick,
                            );
                        }
                        // The spurious copy is transport-deduped at the
                        // receiver; it never becomes a recv span.
                        deliver(true, 0);
                    }
                    if delayed {
                        stats.record_delayed();
                        if let Some(t) = telemetry {
                            t.incr(Counter::MsgsDelayed, 1);
                        }
                    }
                    return Delivery {
                        delivered: true,
                        duplicated,
                        delayed,
                        attempts,
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_keeps_everyone_alive() {
        let s = CrashSchedule::none();
        assert_eq!(s.alive_at(5, 1_000_000), vec![1, 2, 3, 4, 5]);
        assert!(!s.is_crashed(3, 99));
        assert_eq!(s.crash_iter(3), None);
    }

    #[test]
    fn explicit_schedule_applies_from_iteration() {
        let s = CrashSchedule::new(vec![(10, 2), (5, 1)]);
        assert!(!s.is_crashed(1, 4));
        assert!(s.is_crashed(1, 5));
        assert!(s.is_crashed(1, 6));
        assert!(!s.is_crashed(2, 9));
        assert!(s.is_crashed(2, 10));
        assert_eq!(s.alive_at(3, 7), vec![2, 3]);
        assert_eq!(s.crashed_count(10), 2);
    }

    #[test]
    fn crash_iter_matches_events() {
        let s = CrashSchedule::new(vec![(10, 2), (5, 1), (99, 7)]);
        assert_eq!(s.crash_iter(1), Some(5));
        assert_eq!(s.crash_iter(2), Some(10));
        assert_eq!(s.crash_iter(7), Some(99));
        assert_eq!(s.crash_iter(3), None);
        // Ids past the precomputed table are simply never-crashing.
        assert_eq!(s.crash_iter(1000), None);
        assert!(!s.is_crashed(1000, usize::MAX));
    }

    #[test]
    fn every_quantile_kills_everyone_by_the_end() {
        let mut rng = Rng64::seed_from_u64(1);
        let s = CrashSchedule::every_quantile(100, 4, &mut rng);
        assert_eq!(s.events().len(), 4);
        // Crash iterations are 25, 50, 75, 100.
        let iters: Vec<usize> = s.events().iter().map(|&(i, _)| i).collect();
        assert_eq!(iters, vec![25, 50, 75, 100]);
        assert_eq!(s.alive_at(4, 100), Vec::<usize>::new());
        assert_eq!(s.alive_at(4, 24), vec![1, 2, 3, 4]);
        assert_eq!(s.alive_at(4, 60).len(), 2);
    }

    #[test]
    fn every_quantile_is_seed_deterministic() {
        let a = CrashSchedule::every_quantile(1000, 10, &mut Rng64::seed_from_u64(3));
        let b = CrashSchedule::every_quantile(1000, 10, &mut Rng64::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "crashes twice")]
    fn double_crash_rejected() {
        CrashSchedule::new(vec![(1, 1), (2, 1)]);
    }

    #[test]
    fn fate_is_a_pure_function() {
        let plan = FaultPlan {
            seed: 9,
            drop: 0.2,
            duplicate: 0.1,
            delay: 0.1,
            max_delay_ticks: 4,
            partitions: vec![],
        };
        for seq in 0..200 {
            assert_eq!(plan.fate(0, 3, seq, 0), plan.fate(0, 3, seq, 7));
        }
        // Different links get independent streams.
        let a: Vec<Fate> = (0..64).map(|s| plan.fate(0, 1, s, 0)).collect();
        let b: Vec<Fate> = (0..64).map(|s| plan.fate(1, 0, s, 0)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn fate_frequencies_track_probabilities() {
        let plan = FaultPlan {
            seed: 4,
            drop: 0.25,
            duplicate: 0.1,
            delay: 0.05,
            max_delay_ticks: 3,
            partitions: vec![],
        };
        let n = 20_000u64;
        let mut drops = 0;
        let mut dups = 0;
        let mut delays = 0;
        for seq in 0..n {
            match plan.fate(0, 1, seq, 0) {
                Fate::Drop => drops += 1,
                Fate::Duplicate => dups += 1,
                Fate::Delay { ticks } => {
                    assert!((1..=3).contains(&ticks));
                    delays += 1;
                }
                Fate::Deliver => {}
            }
        }
        let frac = |c: u64| c as f64 / n as f64;
        assert!((frac(drops) - 0.25).abs() < 0.02, "drops {drops}");
        assert!((frac(dups) - 0.10).abs() < 0.02, "dups {dups}");
        assert!((frac(delays) - 0.05).abs() < 0.02, "delays {delays}");
    }

    #[test]
    fn partitions_cut_links_and_nodes_in_window() {
        let plan = FaultPlan {
            partitions: vec![Partition::link(0, 2, 3, 6), Partition::node(1, 10, 12)],
            ..FaultPlan::none()
        };
        // Link partition: only 0→2 inside [3, 6).
        assert_eq!(plan.fate(0, 2, 0, 2), Fate::Deliver);
        assert_eq!(plan.fate(0, 2, 1, 3), Fate::Drop);
        assert_eq!(plan.fate(0, 2, 2, 5), Fate::Drop);
        assert_eq!(plan.fate(0, 2, 3, 6), Fate::Deliver);
        assert_eq!(plan.fate(2, 0, 0, 4), Fate::Deliver, "reverse direction");
        // Node partition: both directions of every link touching node 1.
        assert_eq!(plan.fate(0, 1, 9, 10), Fate::Drop);
        assert_eq!(plan.fate(1, 0, 0, 11), Fate::Drop);
        assert_eq!(plan.fate(1, 2, 0, 11), Fate::Drop);
        assert_eq!(plan.fate(0, 2, 9, 11), Fate::Deliver);
        assert_eq!(plan.fate(0, 1, 9, 12), Fate::Deliver);
    }

    #[test]
    fn transmit_retries_and_conserves_bytes() {
        // Always-drop plan: every attempt is burned, nothing delivered.
        let state = FaultState::new(FaultPlan::lossy(1, 1.0), 3);
        let stats = TrafficStats::new(3);
        let mut delivered = 0;
        let d = state.transmit(0, 1, 0, 100, 2, &stats, None, TraceCtx::NONE, |_, _| {
            delivered += 1
        });
        assert!(!d.delivered);
        assert_eq!(d.attempts, 3);
        assert_eq!(delivered, 0);
        let r = stats.report();
        assert_eq!(r.bytes_sent(), 300);
        assert_eq!(r.dropped_bytes, 300);
        assert_eq!(r.bytes_delivered(), 0);
        assert_eq!(r.retries, 2);
        assert_eq!(r.dropped_msgs, 3);
    }

    #[test]
    fn transmit_duplicates_are_accounted_separately() {
        // duplicate = 1.0: first attempt always delivers + duplicates.
        let plan = FaultPlan {
            seed: 2,
            duplicate: 1.0,
            ..FaultPlan::none()
        };
        let state = FaultState::new(plan, 2);
        let stats = TrafficStats::new(2);
        let mut copies = Vec::new();
        let d = state.transmit(0, 1, 0, 40, 2, &stats, None, TraceCtx::NONE, |dup, _| {
            copies.push(dup)
        });
        assert!(d.delivered && d.duplicated);
        assert_eq!(copies, vec![false, true]);
        let r = stats.report();
        assert_eq!(r.bytes_sent(), 40);
        assert_eq!(r.bytes_delivered(), 40, "dup copy not in ingress");
        assert_eq!(r.dup_bytes, 40);
        assert_eq!(r.dup_msgs, 1);
        assert_eq!(r.dropped_bytes, 0);
    }

    #[test]
    fn fault_state_streams_are_interleaving_independent() {
        // Consuming link (0,1) must not perturb link (0,2)'s fates.
        let plan = FaultPlan {
            seed: 11,
            drop: 0.5,
            ..FaultPlan::none()
        };
        let solo = FaultState::new(plan.clone(), 3);
        let fates_a: Vec<Fate> = (0..32).map(|_| solo.next_fate(0, 2, 0)).collect();
        let mixed = FaultState::new(plan, 3);
        let mut fates_b = Vec::new();
        for _ in 0..32 {
            let _ = mixed.next_fate(0, 1, 0);
            fates_b.push(mixed.next_fate(0, 2, 0));
            let _ = mixed.next_fate(1, 0, 0);
        }
        assert_eq!(fates_a, fates_b);
    }
}
