//! Fail-stop crash-fault injection (paper §V-B.3).
//!
//! A crashed worker leaves the computation *and its data shard disappears*.
//! The schedule is decided up-front (deterministically or from a seeded
//! RNG) so experiments are reproducible.

use md_tensor::rng::Rng64;

/// A predetermined schedule of worker crashes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrashSchedule {
    /// `(iteration, worker_id)` pairs, sorted by iteration. The worker is
    /// considered dead *from* that global iteration (inclusive).
    events: Vec<(usize, usize)>,
}

impl CrashSchedule {
    /// No crashes.
    pub fn none() -> Self {
        CrashSchedule::default()
    }

    /// Explicit schedule.
    ///
    /// # Panics
    /// Panics if a worker crashes twice.
    pub fn new(mut events: Vec<(usize, usize)>) -> Self {
        events.sort_unstable();
        let mut seen: Vec<usize> = events.iter().map(|&(_, w)| w).collect();
        seen.sort_unstable();
        let before = seen.len();
        seen.dedup();
        assert_eq!(before, seen.len(), "a worker crashes twice");
        CrashSchedule { events }
    }

    /// The paper's Figure 5 pattern: one worker crashes every
    /// `total_iters / workers` iterations, in a random order, so that by
    /// `total_iters` every worker has crashed.
    pub fn every_quantile(total_iters: usize, workers: usize, rng: &mut Rng64) -> Self {
        assert!(workers > 0);
        let interval = (total_iters / workers).max(1);
        let order = rng.permutation(workers);
        let events = order
            .into_iter()
            .enumerate()
            .map(|(k, w)| ((k + 1) * interval, w + 1)) // worker ids are 1-based
            .collect();
        CrashSchedule::new(events)
    }

    /// All crash events, sorted by iteration.
    pub fn events(&self) -> &[(usize, usize)] {
        &self.events
    }

    /// True iff `worker` is dead at global iteration `iter`.
    pub fn is_crashed(&self, worker: usize, iter: usize) -> bool {
        self.events.iter().any(|&(at, w)| w == worker && iter >= at)
    }

    /// Worker ids still alive at `iter` out of `1..=workers`.
    pub fn alive_at(&self, workers: usize, iter: usize) -> Vec<usize> {
        (1..=workers)
            .filter(|&w| !self.is_crashed(w, iter))
            .collect()
    }

    /// Number of crashes that have happened strictly before or at `iter`.
    pub fn crashed_count(&self, iter: usize) -> usize {
        self.events.iter().filter(|&&(at, _)| iter >= at).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_keeps_everyone_alive() {
        let s = CrashSchedule::none();
        assert_eq!(s.alive_at(5, 1_000_000), vec![1, 2, 3, 4, 5]);
        assert!(!s.is_crashed(3, 99));
    }

    #[test]
    fn explicit_schedule_applies_from_iteration() {
        let s = CrashSchedule::new(vec![(10, 2), (5, 1)]);
        assert!(!s.is_crashed(1, 4));
        assert!(s.is_crashed(1, 5));
        assert!(s.is_crashed(1, 6));
        assert!(!s.is_crashed(2, 9));
        assert!(s.is_crashed(2, 10));
        assert_eq!(s.alive_at(3, 7), vec![2, 3]);
        assert_eq!(s.crashed_count(10), 2);
    }

    #[test]
    fn every_quantile_kills_everyone_by_the_end() {
        let mut rng = Rng64::seed_from_u64(1);
        let s = CrashSchedule::every_quantile(100, 4, &mut rng);
        assert_eq!(s.events().len(), 4);
        // Crash iterations are 25, 50, 75, 100.
        let iters: Vec<usize> = s.events().iter().map(|&(i, _)| i).collect();
        assert_eq!(iters, vec![25, 50, 75, 100]);
        assert_eq!(s.alive_at(4, 100), Vec::<usize>::new());
        assert_eq!(s.alive_at(4, 24), vec![1, 2, 3, 4]);
        assert_eq!(s.alive_at(4, 60).len(), 2);
    }

    #[test]
    fn every_quantile_is_seed_deterministic() {
        let a = CrashSchedule::every_quantile(1000, 10, &mut Rng64::seed_from_u64(3));
        let b = CrashSchedule::every_quantile(1000, 10, &mut Rng64::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "crashes twice")]
    fn double_crash_rejected() {
        CrashSchedule::new(vec![(1, 1), (2, 1)]);
    }
}
