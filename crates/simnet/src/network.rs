//! Message routing between the server and workers.
//!
//! A [`Router`] owns one unbounded crossbeam channel per node; each node
//! claims its [`Endpoint`], which can send to any other node and receive
//! its own messages. Every send is charged to the shared
//! [`TrafficStats`].
//!
//! The same API serves both execution modes used by the experiments:
//! * **threaded** — one OS thread per node, endpoints moved into threads;
//! * **sequential/deterministic** — a single thread holds all endpoints and
//!   interleaves them in a fixed order (this is how the equivalence tests
//!   compare the two runtimes bit-for-bit).
//!
//! Attaching a [`FaultPlan`] (see [`Router::with_faults`]) makes
//! [`Endpoint::send_data`] subject every data-carrying message to seeded
//! drops, duplication and delays, with a bounded stop-and-wait retry loop.
//! Control messages keep using [`Endpoint::send`] and stay reliable.
//! Duplicate copies are flagged on the [`Envelope`] and silently deduped by
//! every receive path, modelling transport-level sequence-number dedup: the
//! application never observes them, only the counters do.

use crate::fault::{Delivery, FaultPlan, FaultState};
use crate::stats::TrafficStats;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use md_telemetry::{Counter, Phase, Recorder, SpanKind, TraceCtx, Track};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Node identifier; [`SERVER`] is 0, workers are `1..=N`.
pub type NodeId = usize;

/// The central server's node id.
pub const SERVER: NodeId = 0;

/// A routed message.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// Sending node.
    pub from: NodeId,
    /// Wire size charged for this message, in bytes.
    pub bytes: u64,
    /// Spurious duplicate copy injected by the fault layer. Receive paths
    /// skip these; they exist only so the wire-level counters are honest.
    pub duplicate: bool,
    /// Causal trace context: the trace this message belongs to and the
    /// span id of the send attempt that delivered it. [`TraceCtx::NONE`]
    /// on untraced sends; receive paths record a `recv` instant linked to
    /// `ctx.span` when it is set.
    pub ctx: TraceCtx,
    /// Payload.
    pub msg: M,
}

/// The destination endpoint (and every clone of its sender) is gone.
///
/// In the experiments this only happens on bugs — simulated crashes keep
/// draining their queue precisely so that liveness stays invisible to
/// senders — but robust callers can treat it like a drop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendError {
    /// The unreachable destination.
    pub to: NodeId,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "destination endpoint {} dropped", self.to)
    }
}

impl std::error::Error for SendError {}

/// Result of a deadline-bounded gather ([`Endpoint::recv_until_quorum`]).
#[derive(Debug)]
pub struct GatherResult<M> {
    /// Accepted envelopes, sorted by sender id (at most one per expected
    /// sender).
    pub envelopes: Vec<Envelope<M>>,
    /// Senders heard from, ascending.
    pub heard: Vec<NodeId>,
    /// Every expected sender answered before the deadline.
    pub complete: bool,
    /// At least `quorum` senders answered before the deadline.
    pub met_quorum: bool,
}

/// Builds the mesh of channels for `1 + workers` nodes.
pub struct Router<M> {
    senders: Vec<Sender<Envelope<M>>>,
    receivers: Vec<Option<Receiver<Envelope<M>>>>,
    stats: Arc<TrafficStats>,
    telemetry: Option<Arc<Recorder>>,
    faults: Option<Arc<FaultState>>,
}

impl<M: Send> Router<M> {
    /// Creates a router for one server plus `workers` workers.
    pub fn new(workers: usize) -> Self {
        let nodes = workers + 1;
        let mut senders = Vec::with_capacity(nodes);
        let mut receivers = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        Router {
            senders,
            receivers,
            stats: Arc::new(TrafficStats::new(nodes)),
            telemetry: None,
            faults: None,
        }
    }

    /// Attaches a telemetry recorder: every subsequently claimed endpoint
    /// records a `comm` span plus message/byte counters per send.
    pub fn with_telemetry(mut self, recorder: Arc<Recorder>) -> Self {
        self.telemetry = Some(recorder);
        self
    }

    /// Instantiates `plan` for this cluster: subsequently claimed endpoints
    /// apply it to every [`Endpoint::send_data`].
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(Arc::new(FaultState::new(plan, self.nodes())));
        self
    }

    /// Total node count (server included).
    pub fn nodes(&self) -> usize {
        self.senders.len()
    }

    /// The shared traffic counters.
    pub fn stats(&self) -> Arc<TrafficStats> {
        Arc::clone(&self.stats)
    }

    /// The shared fault state, if a plan was attached.
    pub fn faults(&self) -> Option<Arc<FaultState>> {
        self.faults.clone()
    }

    /// Claims the endpoint of `node`. Each endpoint can be taken once.
    ///
    /// # Panics
    /// Panics if taken twice or out of range.
    pub fn endpoint(&mut self, node: NodeId) -> Endpoint<M> {
        let rx = self.receivers[node]
            .take()
            .unwrap_or_else(|| panic!("endpoint {node} already taken"));
        Endpoint {
            id: node,
            senders: self.senders.clone(),
            rx,
            stats: Arc::clone(&self.stats),
            telemetry: self.telemetry.clone(),
            faults: self.faults.clone(),
        }
    }

    /// Claims all endpoints in node order (convenience for the sequential
    /// scheduler).
    pub fn all_endpoints(&mut self) -> Vec<Endpoint<M>> {
        (0..self.nodes()).map(|n| self.endpoint(n)).collect()
    }
}

/// One node's communication handle.
pub struct Endpoint<M> {
    id: NodeId,
    senders: Vec<Sender<Envelope<M>>>,
    rx: Receiver<Envelope<M>>,
    stats: Arc<TrafficStats>,
    telemetry: Option<Arc<Recorder>>,
    faults: Option<Arc<FaultState>>,
}

impl<M: Send> Endpoint<M> {
    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Sends `msg` of wire size `bytes` to `to`, recording traffic.
    /// Reliable (never subject to fault injection) — the control plane.
    ///
    /// Returns [`SendError`] if the destination endpoint has been dropped.
    pub fn send(&self, to: NodeId, msg: M, bytes: u64) -> Result<(), SendError> {
        self.send_ctx(to, msg, bytes, TraceCtx::NONE)
    }

    /// [`send`](Self::send) under a trace context: when `ctx` carries a
    /// trace and tracing is on, the attempt records a `send` instant on
    /// this node's track and its span id rides on the envelope, linking
    /// the receiver's `recv` back to it.
    pub fn send_ctx(&self, to: NodeId, msg: M, bytes: u64, ctx: TraceCtx) -> Result<(), SendError> {
        assert_ne!(to, self.id, "node {to} sending to itself");
        let _span = self.telemetry.as_deref().map(|t| {
            t.incr(Counter::MsgsSent, 1);
            t.incr(Counter::BytesSent, bytes);
            t.span(Phase::Comm)
        });
        let sent = self.telemetry.as_deref().map_or(0, |t| {
            t.trace_instant(
                SpanKind::Send {
                    to: to as u32,
                    bytes,
                    attempt: 1,
                },
                Track::node(self.id),
                ctx,
                ctx.trace.saturating_sub(1),
            )
        });
        self.stats.record(self.id, to, bytes);
        self.senders[to]
            .send(Envelope {
                from: self.id,
                bytes,
                duplicate: false,
                ctx: TraceCtx {
                    trace: ctx.trace,
                    span: sent,
                },
                msg,
            })
            .map_err(|_| SendError { to })
    }

    /// Sends one data-carrying message through the fault layer (when one is
    /// attached): each of up to `1 + retries` attempts draws a seeded fate
    /// at the sender's virtual tick `tick` and charges its own wire bytes.
    /// Without a fault plan this is exactly [`send`](Self::send) (one
    /// attempt, always delivered).
    ///
    /// The returned [`Delivery`] reports whether the payload reached the
    /// receiver's queue; a dropped destination endpoint also reads as
    /// non-delivery.
    pub fn send_data(&self, to: NodeId, msg: M, bytes: u64, tick: u64, retries: u32) -> Delivery
    where
        M: Clone,
    {
        self.send_data_ctx(to, msg, bytes, tick, retries, TraceCtx::NONE)
    }

    /// [`send_data`](Self::send_data) under a trace context: every fault
    /// attempt (drops, retransmissions, the delivering send) records an
    /// instant span chained to its predecessor, and the delivering
    /// attempt's span id rides on the envelope.
    pub fn send_data_ctx(
        &self,
        to: NodeId,
        msg: M,
        bytes: u64,
        tick: u64,
        retries: u32,
        ctx: TraceCtx,
    ) -> Delivery
    where
        M: Clone,
    {
        assert_ne!(to, self.id, "node {to} sending to itself");
        let Some(faults) = self.faults.as_deref() else {
            let ok = self.send_ctx(to, msg, bytes, ctx).is_ok();
            return Delivery {
                delivered: ok,
                duplicated: false,
                delayed: false,
                attempts: 1,
            };
        };
        let _span = self.telemetry.as_deref().map(|t| t.span(Phase::Comm));
        let mut enqueued = true;
        let mut d = faults.transmit(
            self.id,
            to,
            tick,
            bytes,
            retries,
            &self.stats,
            self.telemetry.as_deref(),
            ctx,
            |duplicate, sent| {
                enqueued &= self.senders[to]
                    .send(Envelope {
                        from: self.id,
                        bytes,
                        duplicate,
                        ctx: TraceCtx {
                            trace: ctx.trace,
                            span: sent,
                        },
                        msg: msg.clone(),
                    })
                    .is_ok();
            },
        );
        d.delivered &= enqueued;
        d
    }

    /// Records a `recv` instant on this node's track, linked to the send
    /// attempt that delivered `e`. A no-op for untraced envelopes.
    fn note_recv(&self, e: &Envelope<M>) {
        if e.ctx.span == 0 {
            return;
        }
        if let Some(t) = self.telemetry.as_deref() {
            t.trace_instant(
                SpanKind::Recv {
                    from: e.from as u32,
                    bytes: e.bytes,
                },
                Track::node(self.id),
                e.ctx,
                e.ctx.trace.saturating_sub(1),
            );
        }
    }

    /// Blocking receive (duplicate copies are skipped).
    pub fn recv(&self) -> Envelope<M> {
        loop {
            let e = self.rx.recv().expect("all senders dropped");
            if !e.duplicate {
                self.note_recv(&e);
                return e;
            }
        }
    }

    /// Non-blocking receive (duplicate copies are skipped).
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        loop {
            match self.rx.try_recv() {
                Ok(e) if e.duplicate => continue,
                Ok(e) => {
                    self.note_recv(&e);
                    return Some(e);
                }
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => return None,
            }
        }
    }

    /// Receives one message, waiting at most `timeout`. `None` on deadline
    /// (or if all senders are gone). Duplicate copies are skipped without
    /// extending the deadline.
    pub fn recv_deadline(&self, timeout: Duration) -> Option<Envelope<M>> {
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(left) {
                Ok(e) if e.duplicate => continue,
                Ok(e) => {
                    self.note_recv(&e);
                    return Some(e);
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                    return None
                }
            }
        }
    }

    /// Receives exactly `n` messages and returns them sorted by sender id —
    /// the deterministic gather used at synchronization barriers
    /// (the server's `GETFEEDBACKFROMWORKERS()` in Algorithm 1).
    pub fn recv_n_sorted(&self, n: usize) -> Vec<Envelope<M>> {
        let mut out: Vec<Envelope<M>> = (0..n).map(|_| self.recv()).collect();
        out.sort_by_key(|e| e.from);
        out
    }

    /// Deadline-bounded barrier gather: collects at most one accepted
    /// envelope per sender in `expected`, returning as soon as *all*
    /// expected senders answered or the deadline elapsed — it never blocks
    /// past `timeout`. `met_quorum` reports whether at least `quorum`
    /// answered.
    ///
    /// `accept` filters payloads (e.g. "feedback for the current
    /// iteration"); rejected, unexpected or repeated envelopes are
    /// discarded and counted as late ([`Counter::MsgsDelayed`]).
    pub fn recv_until_quorum(
        &self,
        expected: &[NodeId],
        quorum: usize,
        timeout: Duration,
        mut accept: impl FnMut(&Envelope<M>) -> bool,
    ) -> GatherResult<M> {
        let deadline = Instant::now() + timeout;
        let mut envelopes: Vec<Envelope<M>> = Vec::with_capacity(expected.len());
        while envelopes.len() < expected.len() {
            let left = deadline.saturating_duration_since(Instant::now());
            let e = match self.rx.recv_timeout(left) {
                Ok(e) => e,
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            };
            if e.duplicate {
                continue;
            }
            self.note_recv(&e);
            let fresh = expected.contains(&e.from) && !envelopes.iter().any(|h| h.from == e.from);
            if fresh && accept(&e) {
                envelopes.push(e);
            } else if let Some(t) = self.telemetry.as_deref() {
                // Stale iteration, unexpected sender, or a second answer:
                // the message arrived, just not when it was useful.
                t.incr(Counter::MsgsDelayed, 1);
            }
        }
        envelopes.sort_by_key(|e| e.from);
        let heard: Vec<NodeId> = envelopes.iter().map(|e| e.from).collect();
        GatherResult {
            complete: heard.len() == expected.len(),
            met_quorum: heard.len() >= quorum,
            envelopes,
            heard,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_roundtrip() {
        let mut router: Router<String> = Router::new(2);
        let eps = router.all_endpoints();
        eps[0].send(1, "hi".into(), 2).unwrap();
        let e = eps[1].recv();
        assert_eq!(e.from, 0);
        assert_eq!(e.msg, "hi");
        assert_eq!(e.bytes, 2);
        assert!(!e.duplicate);
    }

    #[test]
    fn traffic_is_recorded_on_send() {
        let mut router: Router<u32> = Router::new(2);
        let eps = router.all_endpoints();
        let stats = router.stats();
        eps[1].send(2, 7, 123).unwrap();
        let r = stats.report();
        assert_eq!(r.ingress[2], 123);
        assert_eq!(r.egress[1], 123);
    }

    #[test]
    fn send_to_dropped_endpoint_errors() {
        let mut router: Router<u8> = Router::new(1);
        let server = router.endpoint(SERVER);
        drop(router.endpoint(1));
        drop(router); // drops the router's sender clones too
        assert_eq!(server.send(1, 9, 1), Err(SendError { to: 1 }));
    }

    #[test]
    fn recv_n_sorted_orders_by_sender() {
        let mut router: Router<usize> = Router::new(3);
        let eps = router.all_endpoints();
        // Send out of order.
        eps[3].send(SERVER, 30, 1).unwrap();
        eps[1].send(SERVER, 10, 1).unwrap();
        eps[2].send(SERVER, 20, 1).unwrap();
        let got = eps[0].recv_n_sorted(3);
        assert_eq!(
            got.iter().map(|e| e.from).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(
            got.iter().map(|e| e.msg).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
    }

    #[test]
    fn threaded_ping_pong() {
        let mut router: Router<u64> = Router::new(1);
        let server = router.endpoint(SERVER);
        let worker = router.endpoint(1);
        let h = std::thread::spawn(move || {
            for _ in 0..100 {
                let e = worker.recv();
                worker.send(SERVER, e.msg + 1, 8).unwrap();
            }
        });
        for i in 0..100u64 {
            server.send(1, i, 8).unwrap();
            let e = server.recv();
            assert_eq!(e.msg, i + 1);
        }
        h.join().unwrap();
        let r = router.stats().report();
        assert_eq!(r.total_bytes(), 200 * 8);
    }

    #[test]
    fn try_recv_empty_returns_none() {
        let mut router: Router<u8> = Router::new(1);
        let eps = router.all_endpoints();
        assert!(eps[1].try_recv().is_none());
        eps[0].send(1, 9, 1).unwrap();
        assert_eq!(eps[1].try_recv().unwrap().msg, 9);
    }

    #[test]
    fn telemetry_records_comm_spans_and_counters() {
        let rec = Arc::new(Recorder::enabled());
        let mut router: Router<u8> = Router::new(2).with_telemetry(Arc::clone(&rec));
        let eps = router.all_endpoints();
        eps[0].send(1, 1, 100).unwrap();
        eps[1].send(2, 2, 50).unwrap();
        eps[2].recv();
        assert_eq!(rec.phase_stats(Phase::Comm).count, 2);
        assert_eq!(rec.counter(Counter::MsgsSent), 2);
        assert_eq!(rec.counter(Counter::BytesSent), 150);
    }

    #[test]
    #[should_panic(expected = "already taken")]
    fn endpoint_single_claim() {
        let mut router: Router<u8> = Router::new(1);
        let _a = router.endpoint(0);
        let _b = router.endpoint(0);
    }

    #[test]
    #[should_panic(expected = "sending to itself")]
    fn self_send_rejected() {
        let mut router: Router<u8> = Router::new(1);
        let eps = router.all_endpoints();
        eps[1].send(1, 0, 1).unwrap();
    }

    #[test]
    fn send_data_without_plan_is_plain_send() {
        let mut router: Router<u8> = Router::new(1);
        let eps = router.all_endpoints();
        let d = eps[0].send_data(1, 42, 10, 0, 3);
        assert!(d.delivered && d.attempts == 1);
        assert_eq!(eps[1].recv().msg, 42);
        assert_eq!(router.stats().report().dropped_bytes, 0);
    }

    #[test]
    fn send_data_applies_fault_plan_and_retries() {
        // Always-drop plan: nothing arrives, every attempt is charged.
        let mut router: Router<u8> = Router::new(1).with_faults(FaultPlan::lossy(3, 1.0));
        let eps = router.all_endpoints();
        let d = eps[0].send_data(1, 42, 10, 0, 2);
        assert!(!d.delivered);
        assert_eq!(d.attempts, 3);
        assert!(eps[1].try_recv().is_none());
        let r = router.stats().report();
        assert_eq!(r.bytes_sent(), 30);
        assert_eq!(r.dropped_bytes, 30);
        assert_eq!(r.retries, 2);
        assert_eq!(r.bytes_delivered(), 0);
    }

    #[test]
    fn duplicates_are_invisible_to_receivers_but_counted() {
        let plan = FaultPlan {
            seed: 5,
            duplicate: 1.0,
            ..FaultPlan::none()
        };
        let rec = Arc::new(Recorder::enabled());
        let mut router: Router<u8> = Router::new(1)
            .with_faults(plan)
            .with_telemetry(Arc::clone(&rec));
        let eps = router.all_endpoints();
        let d = eps[0].send_data(1, 7, 4, 0, 0);
        assert!(d.delivered && d.duplicated);
        // Exactly one application-visible copy.
        assert_eq!(eps[1].recv().msg, 7);
        assert!(eps[1].try_recv().is_none());
        assert_eq!(router.stats().report().dup_msgs, 1);
        assert_eq!(rec.counter(Counter::MsgsDuplicated), 1);
    }

    #[test]
    fn traced_send_links_recv_to_the_send_attempt() {
        let rec = Arc::new(Recorder::traced());
        let mut router: Router<u8> = Router::new(1).with_telemetry(Arc::clone(&rec));
        let eps = router.all_endpoints();
        let root = rec.trace_root(0);
        eps[1].send_ctx(SERVER, 7, 16, root.ctx()).unwrap();
        eps[0].recv();
        drop(root);
        let spans = rec.trace_spans();
        let send = spans
            .iter()
            .find(|s| matches!(s.kind, SpanKind::Send { .. }))
            .expect("send span");
        let recv = spans
            .iter()
            .find(|s| matches!(s.kind, SpanKind::Recv { .. }))
            .expect("recv span");
        assert_eq!(send.track, Track::Worker(1));
        assert_eq!(recv.track, Track::Server);
        assert_eq!(recv.parent, send.span, "recv links to the delivering send");
        assert_eq!(recv.trace, send.trace);
    }

    #[test]
    fn traced_retry_chain_is_causally_linked() {
        // Find a seed whose first fate on link 1→0 drops and second
        // delivers, so one retransmission resolves the send.
        let seed = (0..1000)
            .find(|&s| {
                let p = FaultPlan::lossy(s, 0.5);
                p.fate(1, 0, 0, 0) == crate::fault::Fate::Drop
                    && p.fate(1, 0, 1, 0) == crate::fault::Fate::Deliver
            })
            .expect("some seed drops first and delivers second");
        let rec = Arc::new(Recorder::traced());
        let mut router: Router<u8> = Router::new(1)
            .with_faults(FaultPlan::lossy(seed, 0.5))
            .with_telemetry(Arc::clone(&rec));
        let eps = router.all_endpoints();
        let root = rec.trace_root(0);
        let d = eps[1].send_data_ctx(SERVER, 9, 32, 0, 2, root.ctx());
        assert!(d.delivered);
        assert_eq!(d.attempts, 2);
        eps[0].recv();
        drop(root);
        let spans = rec.trace_spans();
        let dropped = spans
            .iter()
            .find(|s| matches!(s.kind, SpanKind::Dropped { .. }))
            .expect("drop span");
        let retry = spans
            .iter()
            .find(|s| matches!(s.kind, SpanKind::Send { attempt: 2, .. }))
            .expect("retry span");
        let recv = spans
            .iter()
            .find(|s| matches!(s.kind, SpanKind::Recv { .. }))
            .expect("recv span");
        // drop → retry → recv, one causal chain.
        assert_eq!(retry.parent, dropped.span);
        assert_eq!(recv.parent, retry.span);
        assert_eq!(dropped.trace, recv.trace);
    }

    #[test]
    fn untraced_sends_record_no_spans() {
        let rec = Arc::new(Recorder::traced());
        let mut router: Router<u8> = Router::new(1).with_telemetry(Arc::clone(&rec));
        let eps = router.all_endpoints();
        eps[0].send(1, 1, 8).unwrap();
        eps[1].recv();
        let d = eps[0].send_data(1, 2, 8, 0, 0);
        assert!(d.delivered);
        eps[1].recv();
        assert!(rec.trace_spans().is_empty(), "NONE ctx stays untraced");
    }

    #[test]
    fn recv_deadline_times_out() {
        let mut router: Router<u8> = Router::new(1);
        let eps = router.all_endpoints();
        let t0 = Instant::now();
        assert!(eps[1].recv_deadline(Duration::from_millis(20)).is_none());
        assert!(t0.elapsed() >= Duration::from_millis(20));
        eps[0].send(1, 3, 1).unwrap();
        assert_eq!(
            eps[1].recv_deadline(Duration::from_millis(20)).unwrap().msg,
            3
        );
    }

    #[test]
    fn quorum_gather_returns_partial_set_at_deadline() {
        let mut router: Router<u8> = Router::new(3);
        let eps = router.all_endpoints();
        eps[2].send(SERVER, 20, 1).unwrap();
        eps[1].send(SERVER, 10, 1).unwrap();
        // Worker 3 never answers; the gather must return at the deadline.
        let t0 = Instant::now();
        let g = eps[0].recv_until_quorum(&[1, 2, 3], 2, Duration::from_millis(50), |_| true);
        assert!(t0.elapsed() < Duration::from_secs(2));
        assert_eq!(g.heard, vec![1, 2]);
        assert!(!g.complete);
        assert!(g.met_quorum);
        assert_eq!(
            g.envelopes.iter().map(|e| e.msg).collect::<Vec<_>>(),
            vec![10, 20]
        );
    }

    #[test]
    fn quorum_gather_returns_early_when_all_heard() {
        let mut router: Router<u8> = Router::new(2);
        let eps = router.all_endpoints();
        eps[1].send(SERVER, 1, 1).unwrap();
        eps[2].send(SERVER, 2, 1).unwrap();
        let t0 = Instant::now();
        let g = eps[0].recv_until_quorum(&[1, 2], 2, Duration::from_secs(30), |_| true);
        assert!(t0.elapsed() < Duration::from_secs(5), "no deadline wait");
        assert!(g.complete && g.met_quorum);
        assert_eq!(g.heard, vec![1, 2]);
    }

    #[test]
    fn quorum_gather_filters_rejected_and_unexpected() {
        let rec = Arc::new(Recorder::enabled());
        let mut router: Router<u8> = Router::new(3).with_telemetry(Arc::clone(&rec));
        let eps = router.all_endpoints();
        eps[3].send(SERVER, 99, 1).unwrap(); // unexpected sender
        eps[1].send(SERVER, 0, 1).unwrap(); // rejected by the filter
        eps[1].send(SERVER, 10, 1).unwrap();
        eps[2].send(SERVER, 20, 1).unwrap();
        let g = eps[0].recv_until_quorum(&[1, 2], 1, Duration::from_millis(200), |e| e.msg != 0);
        assert_eq!(g.heard, vec![1, 2]);
        assert_eq!(
            g.envelopes.iter().map(|e| e.msg).collect::<Vec<_>>(),
            vec![10, 20]
        );
        assert_eq!(rec.counter(Counter::MsgsDelayed), 2);
    }
}
