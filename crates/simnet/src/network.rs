//! Message routing between the server and workers.
//!
//! A [`Router`] owns one unbounded crossbeam channel per node; each node
//! claims its [`Endpoint`], which can send to any other node and receive
//! its own messages. Every send is charged to the shared
//! [`TrafficStats`].
//!
//! The same API serves both execution modes used by the experiments:
//! * **threaded** — one OS thread per node, endpoints moved into threads;
//! * **sequential/deterministic** — a single thread holds all endpoints and
//!   interleaves them in a fixed order (this is how the equivalence tests
//!   compare the two runtimes bit-for-bit).

use crate::stats::TrafficStats;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use md_telemetry::{Counter, Phase, Recorder};
use std::sync::Arc;

/// Node identifier; [`SERVER`] is 0, workers are `1..=N`.
pub type NodeId = usize;

/// The central server's node id.
pub const SERVER: NodeId = 0;

/// A routed message.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// Sending node.
    pub from: NodeId,
    /// Wire size charged for this message, in bytes.
    pub bytes: u64,
    /// Payload.
    pub msg: M,
}

/// Builds the mesh of channels for `1 + workers` nodes.
pub struct Router<M> {
    senders: Vec<Sender<Envelope<M>>>,
    receivers: Vec<Option<Receiver<Envelope<M>>>>,
    stats: Arc<TrafficStats>,
    telemetry: Option<Arc<Recorder>>,
}

impl<M: Send> Router<M> {
    /// Creates a router for one server plus `workers` workers.
    pub fn new(workers: usize) -> Self {
        let nodes = workers + 1;
        let mut senders = Vec::with_capacity(nodes);
        let mut receivers = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        Router {
            senders,
            receivers,
            stats: Arc::new(TrafficStats::new(nodes)),
            telemetry: None,
        }
    }

    /// Attaches a telemetry recorder: every subsequently claimed endpoint
    /// records a `comm` span plus message/byte counters per send.
    pub fn with_telemetry(mut self, recorder: Arc<Recorder>) -> Self {
        self.telemetry = Some(recorder);
        self
    }

    /// Total node count (server included).
    pub fn nodes(&self) -> usize {
        self.senders.len()
    }

    /// The shared traffic counters.
    pub fn stats(&self) -> Arc<TrafficStats> {
        Arc::clone(&self.stats)
    }

    /// Claims the endpoint of `node`. Each endpoint can be taken once.
    ///
    /// # Panics
    /// Panics if taken twice or out of range.
    pub fn endpoint(&mut self, node: NodeId) -> Endpoint<M> {
        let rx = self.receivers[node]
            .take()
            .unwrap_or_else(|| panic!("endpoint {node} already taken"));
        Endpoint {
            id: node,
            senders: self.senders.clone(),
            rx,
            stats: Arc::clone(&self.stats),
            telemetry: self.telemetry.clone(),
        }
    }

    /// Claims all endpoints in node order (convenience for the sequential
    /// scheduler).
    pub fn all_endpoints(&mut self) -> Vec<Endpoint<M>> {
        (0..self.nodes()).map(|n| self.endpoint(n)).collect()
    }
}

/// One node's communication handle.
pub struct Endpoint<M> {
    id: NodeId,
    senders: Vec<Sender<Envelope<M>>>,
    rx: Receiver<Envelope<M>>,
    stats: Arc<TrafficStats>,
    telemetry: Option<Arc<Recorder>>,
}

impl<M: Send> Endpoint<M> {
    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Sends `msg` of wire size `bytes` to `to`, recording traffic.
    ///
    /// # Panics
    /// Panics if the destination endpoint (and all clones of its sender)
    /// has been dropped — in the experiments that only happens on bugs, not
    /// on simulated crashes (crashed workers keep draining their queue).
    pub fn send(&self, to: NodeId, msg: M, bytes: u64) {
        assert_ne!(to, self.id, "node {to} sending to itself");
        let _span = self.telemetry.as_deref().map(|t| {
            t.incr(Counter::MsgsSent, 1);
            t.incr(Counter::BytesSent, bytes);
            t.span(Phase::Comm)
        });
        self.stats.record(self.id, to, bytes);
        self.senders[to]
            .send(Envelope {
                from: self.id,
                bytes,
                msg,
            })
            .expect("destination endpoint dropped");
    }

    /// Blocking receive.
    pub fn recv(&self) -> Envelope<M> {
        self.rx.recv().expect("all senders dropped")
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        match self.rx.try_recv() {
            Ok(e) => Some(e),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Receives exactly `n` messages and returns them sorted by sender id —
    /// the deterministic gather used at synchronization barriers
    /// (the server's `GETFEEDBACKFROMWORKERS()` in Algorithm 1).
    pub fn recv_n_sorted(&self, n: usize) -> Vec<Envelope<M>> {
        let mut out: Vec<Envelope<M>> = (0..n).map(|_| self.recv()).collect();
        out.sort_by_key(|e| e.from);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_roundtrip() {
        let mut router: Router<String> = Router::new(2);
        let eps = router.all_endpoints();
        eps[0].send(1, "hi".into(), 2);
        let e = eps[1].recv();
        assert_eq!(e.from, 0);
        assert_eq!(e.msg, "hi");
        assert_eq!(e.bytes, 2);
    }

    #[test]
    fn traffic_is_recorded_on_send() {
        let mut router: Router<u32> = Router::new(2);
        let eps = router.all_endpoints();
        let stats = router.stats();
        eps[1].send(2, 7, 123);
        let r = stats.report();
        assert_eq!(r.ingress[2], 123);
        assert_eq!(r.egress[1], 123);
    }

    #[test]
    fn recv_n_sorted_orders_by_sender() {
        let mut router: Router<usize> = Router::new(3);
        let eps = router.all_endpoints();
        // Send out of order.
        eps[3].send(SERVER, 30, 1);
        eps[1].send(SERVER, 10, 1);
        eps[2].send(SERVER, 20, 1);
        let got = eps[0].recv_n_sorted(3);
        assert_eq!(
            got.iter().map(|e| e.from).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(
            got.iter().map(|e| e.msg).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
    }

    #[test]
    fn threaded_ping_pong() {
        let mut router: Router<u64> = Router::new(1);
        let server = router.endpoint(SERVER);
        let worker = router.endpoint(1);
        let h = std::thread::spawn(move || {
            for _ in 0..100 {
                let e = worker.recv();
                worker.send(SERVER, e.msg + 1, 8);
            }
        });
        for i in 0..100u64 {
            server.send(1, i, 8);
            let e = server.recv();
            assert_eq!(e.msg, i + 1);
        }
        h.join().unwrap();
        let r = router.stats().report();
        assert_eq!(r.total_bytes(), 200 * 8);
    }

    #[test]
    fn try_recv_empty_returns_none() {
        let mut router: Router<u8> = Router::new(1);
        let eps = router.all_endpoints();
        assert!(eps[1].try_recv().is_none());
        eps[0].send(1, 9, 1);
        assert_eq!(eps[1].try_recv().unwrap().msg, 9);
    }

    #[test]
    fn telemetry_records_comm_spans_and_counters() {
        let rec = Arc::new(Recorder::enabled());
        let mut router: Router<u8> = Router::new(2).with_telemetry(Arc::clone(&rec));
        let eps = router.all_endpoints();
        eps[0].send(1, 1, 100);
        eps[1].send(2, 2, 50);
        eps[2].recv();
        assert_eq!(rec.phase_stats(Phase::Comm).count, 2);
        assert_eq!(rec.counter(Counter::MsgsSent), 2);
        assert_eq!(rec.counter(Counter::BytesSent), 150);
    }

    #[test]
    #[should_panic(expected = "already taken")]
    fn endpoint_single_claim() {
        let mut router: Router<u8> = Router::new(1);
        let _a = router.endpoint(0);
        let _b = router.endpoint(0);
    }

    #[test]
    #[should_panic(expected = "sending to itself")]
    fn self_send_rejected() {
        let mut router: Router<u8> = Router::new(1);
        let eps = router.all_endpoints();
        eps[1].send(1, 0, 1);
    }
}
