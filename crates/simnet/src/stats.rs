//! Byte-accurate traffic accounting.
//!
//! Every message carries its wire size; counters are atomic so the threaded
//! runtime can update them concurrently. The per-class totals correspond
//! exactly to the rows of the paper's Table III (`C→W`, `W→C`, `W→W`).

use std::sync::atomic::{AtomicU64, Ordering};

/// Which logical link a message travelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// Central server to a worker.
    ServerToWorker,
    /// Worker to the central server.
    WorkerToServer,
    /// Worker to worker (the discriminator swap path).
    WorkerToWorker,
}

impl LinkClass {
    /// Classifies a (from, to) pair given that node 0 is the server.
    pub fn of(from: usize, to: usize) -> LinkClass {
        match (from, to) {
            (0, _) => LinkClass::ServerToWorker,
            (_, 0) => LinkClass::WorkerToServer,
            _ => LinkClass::WorkerToWorker,
        }
    }

    fn index(self) -> usize {
        match self {
            LinkClass::ServerToWorker => 0,
            LinkClass::WorkerToServer => 1,
            LinkClass::WorkerToWorker => 2,
        }
    }
}

/// Concurrent traffic counters for a cluster of `1 + N` nodes.
#[derive(Debug)]
pub struct TrafficStats {
    ingress: Vec<AtomicU64>,
    egress: Vec<AtomicU64>,
    class_bytes: [AtomicU64; 3],
    class_msgs: [AtomicU64; 3],
}

impl TrafficStats {
    /// Creates counters for `nodes` nodes (server included).
    pub fn new(nodes: usize) -> Self {
        TrafficStats {
            ingress: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            egress: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            class_bytes: Default::default(),
            class_msgs: Default::default(),
        }
    }

    /// Number of nodes tracked.
    pub fn nodes(&self) -> usize {
        self.ingress.len()
    }

    /// Records one message of `bytes` from `from` to `to`.
    pub fn record(&self, from: usize, to: usize, bytes: u64) {
        self.egress[from].fetch_add(bytes, Ordering::Relaxed);
        self.ingress[to].fetch_add(bytes, Ordering::Relaxed);
        let c = LinkClass::of(from, to).index();
        self.class_bytes[c].fetch_add(bytes, Ordering::Relaxed);
        self.class_msgs[c].fetch_add(1, Ordering::Relaxed);
    }

    /// Immutable snapshot of all counters.
    pub fn report(&self) -> TrafficReport {
        TrafficReport {
            ingress: self
                .ingress
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            egress: self
                .egress
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            class_bytes: [
                self.class_bytes[0].load(Ordering::Relaxed),
                self.class_bytes[1].load(Ordering::Relaxed),
                self.class_bytes[2].load(Ordering::Relaxed),
            ],
            class_msgs: [
                self.class_msgs[0].load(Ordering::Relaxed),
                self.class_msgs[1].load(Ordering::Relaxed),
                self.class_msgs[2].load(Ordering::Relaxed),
            ],
        }
    }
}

/// A point-in-time copy of the traffic counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrafficReport {
    /// Bytes received per node (index 0 = server).
    pub ingress: Vec<u64>,
    /// Bytes sent per node.
    pub egress: Vec<u64>,
    /// Total bytes per [`LinkClass`] (S→W, W→S, W→W).
    pub class_bytes: [u64; 3],
    /// Message counts per [`LinkClass`].
    pub class_msgs: [u64; 3],
}

impl TrafficReport {
    /// Bytes of a link class.
    pub fn bytes(&self, class: LinkClass) -> u64 {
        self.class_bytes[class.index()]
    }

    /// Message count of a link class.
    pub fn msgs(&self, class: LinkClass) -> u64 {
        self.class_msgs[class.index()]
    }

    /// Total bytes moved in the whole system.
    pub fn total_bytes(&self) -> u64 {
        self.class_bytes.iter().sum()
    }

    /// Maximum per-node ingress over the workers only (paper Figure 2's
    /// "maximal ingress traffic" at workers).
    pub fn max_worker_ingress(&self) -> u64 {
        self.ingress.iter().skip(1).copied().max().unwrap_or(0)
    }

    /// Server ingress bytes.
    pub fn server_ingress(&self) -> u64 {
        self.ingress[0]
    }

    /// Difference report: `self - earlier` (for per-iteration measurements).
    ///
    /// Saturates at zero instead of panicking: under relaxed concurrent
    /// recording, a later snapshot can transiently lag an earlier one on
    /// individual counters, and callers may also pass baselines from a
    /// different (restarted) stats instance.
    pub fn since(&self, earlier: &TrafficReport) -> TrafficReport {
        TrafficReport {
            ingress: self
                .ingress
                .iter()
                .zip(&earlier.ingress)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            egress: self
                .egress
                .iter()
                .zip(&earlier.egress)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            class_bytes: [
                self.class_bytes[0].saturating_sub(earlier.class_bytes[0]),
                self.class_bytes[1].saturating_sub(earlier.class_bytes[1]),
                self.class_bytes[2].saturating_sub(earlier.class_bytes[2]),
            ],
            class_msgs: [
                self.class_msgs[0].saturating_sub(earlier.class_msgs[0]),
                self.class_msgs[1].saturating_sub(earlier.class_msgs[1]),
                self.class_msgs[2].saturating_sub(earlier.class_msgs[2]),
            ],
        }
    }

    /// Converts to the dependency-neutral summary md-telemetry's
    /// `RunRecord` embeds.
    pub fn telemetry_summary(&self) -> md_telemetry::TrafficSummary {
        md_telemetry::TrafficSummary {
            ingress: self.ingress.clone(),
            egress: self.egress.clone(),
            messages: self.class_msgs.iter().sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_classification() {
        assert_eq!(LinkClass::of(0, 3), LinkClass::ServerToWorker);
        assert_eq!(LinkClass::of(2, 0), LinkClass::WorkerToServer);
        assert_eq!(LinkClass::of(1, 2), LinkClass::WorkerToWorker);
    }

    #[test]
    fn record_updates_all_counters() {
        let s = TrafficStats::new(3);
        s.record(0, 1, 100);
        s.record(1, 0, 40);
        s.record(1, 2, 7);
        let r = s.report();
        assert_eq!(r.egress, vec![100, 47, 0]);
        assert_eq!(r.ingress, vec![40, 100, 7]);
        assert_eq!(r.bytes(LinkClass::ServerToWorker), 100);
        assert_eq!(r.bytes(LinkClass::WorkerToServer), 40);
        assert_eq!(r.bytes(LinkClass::WorkerToWorker), 7);
        assert_eq!(r.msgs(LinkClass::WorkerToWorker), 1);
        assert_eq!(r.total_bytes(), 147);
    }

    #[test]
    fn conservation_total_egress_equals_total_ingress() {
        let s = TrafficStats::new(5);
        for (f, t, b) in [
            (0, 1, 10u64),
            (1, 0, 20),
            (2, 3, 30),
            (4, 2, 40),
            (0, 4, 50),
        ] {
            s.record(f, t, b);
        }
        let r = s.report();
        assert_eq!(r.ingress.iter().sum::<u64>(), r.egress.iter().sum::<u64>());
    }

    #[test]
    fn since_computes_deltas() {
        let s = TrafficStats::new(2);
        s.record(0, 1, 5);
        let before = s.report();
        s.record(0, 1, 11);
        let delta = s.report().since(&before);
        assert_eq!(delta.ingress[1], 11);
        assert_eq!(delta.msgs(LinkClass::ServerToWorker), 1);
    }

    #[test]
    fn since_saturates_instead_of_underflowing() {
        // Baseline from a *different* (busier) stats instance: every
        // counter in `earlier` exceeds `self`'s.
        let busy = TrafficStats::new(2);
        busy.record(0, 1, 100);
        busy.record(1, 0, 100);
        let earlier = busy.report();
        let fresh = TrafficStats::new(2);
        fresh.record(0, 1, 30);
        let delta = fresh.report().since(&earlier);
        assert_eq!(delta.ingress, vec![0, 0]);
        assert_eq!(delta.egress, vec![0, 0]);
        assert_eq!(delta.class_bytes, [0, 0, 0]);
        assert_eq!(delta.class_msgs, [0, 0, 0]);
    }

    #[test]
    fn telemetry_summary_mirrors_report() {
        let s = TrafficStats::new(3);
        s.record(0, 1, 10);
        s.record(1, 2, 5);
        s.record(2, 0, 1);
        let r = s.report();
        let t = r.telemetry_summary();
        assert_eq!(t.ingress, r.ingress);
        assert_eq!(t.egress, r.egress);
        assert_eq!(t.messages, 3);
        assert_eq!(t.total_bytes(), r.total_bytes());
    }

    #[test]
    fn max_worker_ingress_excludes_server() {
        let s = TrafficStats::new(3);
        s.record(1, 0, 1000); // server ingress, must not count
        s.record(0, 2, 60);
        let r = s.report();
        assert_eq!(r.max_worker_ingress(), 60);
        assert_eq!(r.server_ingress(), 1000);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        use std::sync::Arc;
        let s = Arc::new(TrafficStats::new(4));
        let mut handles = Vec::new();
        for t in 1..4usize {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s.record(t, 0, 3);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let r = s.report();
        assert_eq!(r.server_ingress(), 9000);
        assert_eq!(r.msgs(LinkClass::WorkerToServer), 3000);
    }
}
