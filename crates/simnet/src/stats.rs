//! Byte-accurate traffic accounting.
//!
//! Every message carries its wire size; counters are atomic so the threaded
//! runtime can update them concurrently. The per-class totals correspond
//! exactly to the rows of the paper's Table III (`C→W`, `W→C`, `W→W`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Which logical link a message travelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// Central server to a worker.
    ServerToWorker,
    /// Worker to the central server.
    WorkerToServer,
    /// Worker to worker (the discriminator swap path).
    WorkerToWorker,
}

impl LinkClass {
    /// Classifies a (from, to) pair given that node 0 is the server.
    pub fn of(from: usize, to: usize) -> LinkClass {
        match (from, to) {
            (0, _) => LinkClass::ServerToWorker,
            (_, 0) => LinkClass::WorkerToServer,
            _ => LinkClass::WorkerToWorker,
        }
    }

    fn index(self) -> usize {
        match self {
            LinkClass::ServerToWorker => 0,
            LinkClass::WorkerToServer => 1,
            LinkClass::WorkerToWorker => 2,
        }
    }
}

/// Concurrent traffic counters for a cluster of `1 + N` nodes.
///
/// Sent-side counters (`egress`, `class_*`) tally every attempt put on the
/// wire; `ingress` tallies what actually reached a receiver. On a perfect
/// network the two coincide (the legacy [`record`](Self::record) bumps
/// both); under an injected [`FaultPlan`](crate::FaultPlan) they are
/// reconciled by the fault counters:
/// `bytes_sent == bytes_delivered + dropped_bytes`, with duplicated bytes
/// accounted separately (a spurious extra copy is neither "sent" by the
/// application nor part of its delivered payload).
///
/// Under elastic membership, links can point at workers that are no
/// longer (or not yet) part of the cluster. Recording is therefore
/// tolerant rather than panicking: attempts touching an out-of-range
/// node id are ignored, and [`retire`](Self::retire)d nodes have their
/// counters *frozen* — historical totals stay in every report, but no
/// new traffic is accounted against a departed peer.
#[derive(Debug)]
pub struct TrafficStats {
    ingress: Vec<AtomicU64>,
    egress: Vec<AtomicU64>,
    retired: Vec<AtomicBool>,
    class_bytes: [AtomicU64; 3],
    class_msgs: [AtomicU64; 3],
    dropped_msgs: AtomicU64,
    dropped_bytes: AtomicU64,
    dup_msgs: AtomicU64,
    dup_bytes: AtomicU64,
    delayed_msgs: AtomicU64,
    retries: AtomicU64,
}

impl TrafficStats {
    /// Creates counters for `nodes` nodes (server included).
    pub fn new(nodes: usize) -> Self {
        TrafficStats {
            ingress: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            egress: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            retired: (0..nodes).map(|_| AtomicBool::new(false)).collect(),
            class_bytes: Default::default(),
            class_msgs: Default::default(),
            dropped_msgs: AtomicU64::new(0),
            dropped_bytes: AtomicU64::new(0),
            dup_msgs: AtomicU64::new(0),
            dup_bytes: AtomicU64::new(0),
            delayed_msgs: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        }
    }

    /// Number of nodes tracked.
    pub fn nodes(&self) -> usize {
        self.ingress.len()
    }

    /// Freezes a departed node's counters: its historical totals remain
    /// in every report and checkpoint, but subsequent attempts touching
    /// it are ignored on both ends. Irreversible (a re-used id would
    /// conflate two lifetimes of traffic).
    pub fn retire(&self, node: usize) {
        if let Some(r) = self.retired.get(node) {
            r.store(true, Ordering::Relaxed);
        }
    }

    /// Whether a node's counters are frozen (out-of-range ids count as
    /// retired: traffic to them is never accounted).
    pub fn is_retired(&self, node: usize) -> bool {
        self.retired
            .get(node)
            .map(|r| r.load(Ordering::Relaxed))
            .unwrap_or(true)
    }

    /// Records one message of `bytes` from `from` to `to`, sent *and*
    /// delivered (the perfect-network path). Ignored entirely when either
    /// endpoint is retired or out of range, so the sent/delivered
    /// reconciliation invariants keep holding per attempt.
    pub fn record(&self, from: usize, to: usize, bytes: u64) {
        if self.is_retired(from) || self.is_retired(to) {
            return;
        }
        self.record_attempt(from, to, bytes);
        self.record_delivery(to, bytes);
    }

    /// Records the sent side of one attempt (egress + per-class totals).
    /// Ignored when either endpoint is retired or out of range.
    pub fn record_attempt(&self, from: usize, to: usize, bytes: u64) {
        if self.is_retired(from) || self.is_retired(to) {
            return;
        }
        self.egress[from].fetch_add(bytes, Ordering::Relaxed);
        let c = LinkClass::of(from, to).index();
        self.class_bytes[c].fetch_add(bytes, Ordering::Relaxed);
        self.class_msgs[c].fetch_add(1, Ordering::Relaxed);
    }

    /// Records the delivered side of one attempt (receiver ingress).
    /// Ignored when the receiver is retired or out of range.
    pub fn record_delivery(&self, to: usize, bytes: u64) {
        if self.is_retired(to) {
            return;
        }
        self.ingress[to].fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one attempt lost in transit.
    pub fn record_dropped(&self, bytes: u64) {
        self.dropped_msgs.fetch_add(1, Ordering::Relaxed);
        self.dropped_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one spurious duplicate copy delivered by the network.
    pub fn record_duplicated(&self, bytes: u64) {
        self.dup_msgs.fetch_add(1, Ordering::Relaxed);
        self.dup_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one message delivered late.
    pub fn record_delayed(&self) {
        self.delayed_msgs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one retransmission attempt.
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Flattens every counter into a `u64` vector for checkpointing:
    /// `[nodes, ingress×n, egress×n, class_bytes×3, class_msgs×3,
    /// dropped_msgs, dropped_bytes, dup_msgs, dup_bytes, delayed_msgs,
    /// retries]`. Retirement flags are *not* persisted — they are
    /// membership state, re-derived from the restored view — so the wire
    /// format is unchanged from pre-elastic checkpoints.
    pub fn state_words(&self) -> Vec<u64> {
        let n = self.nodes();
        let mut w = Vec::with_capacity(2 * n + 13);
        w.push(n as u64);
        w.extend(self.ingress.iter().map(|a| a.load(Ordering::Relaxed)));
        w.extend(self.egress.iter().map(|a| a.load(Ordering::Relaxed)));
        w.extend(self.class_bytes.iter().map(|a| a.load(Ordering::Relaxed)));
        w.extend(self.class_msgs.iter().map(|a| a.load(Ordering::Relaxed)));
        w.push(self.dropped_msgs.load(Ordering::Relaxed));
        w.push(self.dropped_bytes.load(Ordering::Relaxed));
        w.push(self.dup_msgs.load(Ordering::Relaxed));
        w.push(self.dup_bytes.load(Ordering::Relaxed));
        w.push(self.delayed_msgs.load(Ordering::Relaxed));
        w.push(self.retries.load(Ordering::Relaxed));
        w
    }

    /// Restores counters captured by [`state_words`](Self::state_words).
    /// Errors when the word count or node count does not match this
    /// instance.
    pub fn load_state_words(&self, words: &[u64]) -> Result<(), String> {
        let n = self.nodes();
        if words.len() != 2 * n + 13 || words[0] != n as u64 {
            return Err(format!(
                "traffic counters for {} nodes / {} words, expected {} nodes / {} words",
                words.first().copied().unwrap_or(0),
                words.len(),
                n,
                2 * n + 13
            ));
        }
        for (a, &w) in self.ingress.iter().zip(&words[1..1 + n]) {
            a.store(w, Ordering::Relaxed);
        }
        for (a, &w) in self.egress.iter().zip(&words[1 + n..1 + 2 * n]) {
            a.store(w, Ordering::Relaxed);
        }
        let tail = &words[1 + 2 * n..];
        for (a, &w) in self.class_bytes.iter().zip(&tail[0..3]) {
            a.store(w, Ordering::Relaxed);
        }
        for (a, &w) in self.class_msgs.iter().zip(&tail[3..6]) {
            a.store(w, Ordering::Relaxed);
        }
        self.dropped_msgs.store(tail[6], Ordering::Relaxed);
        self.dropped_bytes.store(tail[7], Ordering::Relaxed);
        self.dup_msgs.store(tail[8], Ordering::Relaxed);
        self.dup_bytes.store(tail[9], Ordering::Relaxed);
        self.delayed_msgs.store(tail[10], Ordering::Relaxed);
        self.retries.store(tail[11], Ordering::Relaxed);
        Ok(())
    }

    /// Immutable snapshot of all counters.
    pub fn report(&self) -> TrafficReport {
        TrafficReport {
            ingress: self
                .ingress
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            egress: self
                .egress
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            class_bytes: [
                self.class_bytes[0].load(Ordering::Relaxed),
                self.class_bytes[1].load(Ordering::Relaxed),
                self.class_bytes[2].load(Ordering::Relaxed),
            ],
            class_msgs: [
                self.class_msgs[0].load(Ordering::Relaxed),
                self.class_msgs[1].load(Ordering::Relaxed),
                self.class_msgs[2].load(Ordering::Relaxed),
            ],
            dropped_msgs: self.dropped_msgs.load(Ordering::Relaxed),
            dropped_bytes: self.dropped_bytes.load(Ordering::Relaxed),
            dup_msgs: self.dup_msgs.load(Ordering::Relaxed),
            dup_bytes: self.dup_bytes.load(Ordering::Relaxed),
            delayed_msgs: self.delayed_msgs.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the traffic counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrafficReport {
    /// Bytes received per node (index 0 = server).
    pub ingress: Vec<u64>,
    /// Bytes sent per node.
    pub egress: Vec<u64>,
    /// Total bytes per [`LinkClass`] (S→W, W→S, W→W).
    pub class_bytes: [u64; 3],
    /// Message counts per [`LinkClass`].
    pub class_msgs: [u64; 3],
    /// Attempts lost to injected faults.
    pub dropped_msgs: u64,
    /// Bytes lost to injected faults.
    pub dropped_bytes: u64,
    /// Spurious duplicate copies the network delivered.
    pub dup_msgs: u64,
    /// Bytes moved by spurious duplicate copies.
    pub dup_bytes: u64,
    /// Messages delivered late.
    pub delayed_msgs: u64,
    /// Retransmission attempts after drops.
    pub retries: u64,
}

impl TrafficReport {
    /// Total bytes put on the wire by senders (attempts, retries included).
    pub fn bytes_sent(&self) -> u64 {
        self.egress.iter().sum()
    }

    /// Total bytes that reached a receiver, duplicates excluded.
    pub fn bytes_delivered(&self) -> u64 {
        self.ingress.iter().sum()
    }
    /// Bytes of a link class.
    pub fn bytes(&self, class: LinkClass) -> u64 {
        self.class_bytes[class.index()]
    }

    /// Message count of a link class.
    pub fn msgs(&self, class: LinkClass) -> u64 {
        self.class_msgs[class.index()]
    }

    /// Total bytes moved in the whole system.
    pub fn total_bytes(&self) -> u64 {
        self.class_bytes.iter().sum()
    }

    /// Maximum per-node ingress over the workers only (paper Figure 2's
    /// "maximal ingress traffic" at workers).
    pub fn max_worker_ingress(&self) -> u64 {
        self.ingress.iter().skip(1).copied().max().unwrap_or(0)
    }

    /// Server ingress bytes.
    pub fn server_ingress(&self) -> u64 {
        self.ingress[0]
    }

    /// Difference report: `self - earlier` (for per-iteration measurements).
    ///
    /// Saturates at zero instead of panicking: under relaxed concurrent
    /// recording, a later snapshot can transiently lag an earlier one on
    /// individual counters, and callers may also pass baselines from a
    /// different (restarted) stats instance.
    pub fn since(&self, earlier: &TrafficReport) -> TrafficReport {
        TrafficReport {
            ingress: self
                .ingress
                .iter()
                .zip(&earlier.ingress)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            egress: self
                .egress
                .iter()
                .zip(&earlier.egress)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            class_bytes: [
                self.class_bytes[0].saturating_sub(earlier.class_bytes[0]),
                self.class_bytes[1].saturating_sub(earlier.class_bytes[1]),
                self.class_bytes[2].saturating_sub(earlier.class_bytes[2]),
            ],
            class_msgs: [
                self.class_msgs[0].saturating_sub(earlier.class_msgs[0]),
                self.class_msgs[1].saturating_sub(earlier.class_msgs[1]),
                self.class_msgs[2].saturating_sub(earlier.class_msgs[2]),
            ],
            dropped_msgs: self.dropped_msgs.saturating_sub(earlier.dropped_msgs),
            dropped_bytes: self.dropped_bytes.saturating_sub(earlier.dropped_bytes),
            dup_msgs: self.dup_msgs.saturating_sub(earlier.dup_msgs),
            dup_bytes: self.dup_bytes.saturating_sub(earlier.dup_bytes),
            delayed_msgs: self.delayed_msgs.saturating_sub(earlier.delayed_msgs),
            retries: self.retries.saturating_sub(earlier.retries),
        }
    }

    /// Converts to the dependency-neutral summary md-telemetry's
    /// `RunRecord` embeds.
    pub fn telemetry_summary(&self) -> md_telemetry::TrafficSummary {
        md_telemetry::TrafficSummary {
            ingress: self.ingress.clone(),
            egress: self.egress.clone(),
            messages: self.class_msgs.iter().sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_words_roundtrip_restores_every_counter() {
        let s = TrafficStats::new(3);
        s.record(0, 1, 100);
        s.record(2, 0, 40);
        s.record_dropped(7);
        s.record_duplicated(3);
        s.record_delayed();
        s.record_retry();
        let words = s.state_words();
        let fresh = TrafficStats::new(3);
        fresh.load_state_words(&words).unwrap();
        assert_eq!(fresh.report(), s.report());
        // Wrong node count is rejected.
        assert!(TrafficStats::new(4).load_state_words(&words).is_err());
        assert!(fresh.load_state_words(&words[..5]).is_err());
    }

    #[test]
    fn link_classification() {
        assert_eq!(LinkClass::of(0, 3), LinkClass::ServerToWorker);
        assert_eq!(LinkClass::of(2, 0), LinkClass::WorkerToServer);
        assert_eq!(LinkClass::of(1, 2), LinkClass::WorkerToWorker);
    }

    #[test]
    fn record_updates_all_counters() {
        let s = TrafficStats::new(3);
        s.record(0, 1, 100);
        s.record(1, 0, 40);
        s.record(1, 2, 7);
        let r = s.report();
        assert_eq!(r.egress, vec![100, 47, 0]);
        assert_eq!(r.ingress, vec![40, 100, 7]);
        assert_eq!(r.bytes(LinkClass::ServerToWorker), 100);
        assert_eq!(r.bytes(LinkClass::WorkerToServer), 40);
        assert_eq!(r.bytes(LinkClass::WorkerToWorker), 7);
        assert_eq!(r.msgs(LinkClass::WorkerToWorker), 1);
        assert_eq!(r.total_bytes(), 147);
    }

    #[test]
    fn conservation_total_egress_equals_total_ingress() {
        let s = TrafficStats::new(5);
        for (f, t, b) in [
            (0, 1, 10u64),
            (1, 0, 20),
            (2, 3, 30),
            (4, 2, 40),
            (0, 4, 50),
        ] {
            s.record(f, t, b);
        }
        let r = s.report();
        assert_eq!(r.ingress.iter().sum::<u64>(), r.egress.iter().sum::<u64>());
    }

    #[test]
    fn since_computes_deltas() {
        let s = TrafficStats::new(2);
        s.record(0, 1, 5);
        let before = s.report();
        s.record(0, 1, 11);
        let delta = s.report().since(&before);
        assert_eq!(delta.ingress[1], 11);
        assert_eq!(delta.msgs(LinkClass::ServerToWorker), 1);
    }

    #[test]
    fn since_saturates_instead_of_underflowing() {
        // Baseline from a *different* (busier) stats instance: every
        // counter in `earlier` exceeds `self`'s.
        let busy = TrafficStats::new(2);
        busy.record(0, 1, 100);
        busy.record(1, 0, 100);
        let earlier = busy.report();
        let fresh = TrafficStats::new(2);
        fresh.record(0, 1, 30);
        let delta = fresh.report().since(&earlier);
        assert_eq!(delta.ingress, vec![0, 0]);
        assert_eq!(delta.egress, vec![0, 0]);
        assert_eq!(delta.class_bytes, [0, 0, 0]);
        assert_eq!(delta.class_msgs, [0, 0, 0]);
    }

    #[test]
    fn telemetry_summary_mirrors_report() {
        let s = TrafficStats::new(3);
        s.record(0, 1, 10);
        s.record(1, 2, 5);
        s.record(2, 0, 1);
        let r = s.report();
        let t = r.telemetry_summary();
        assert_eq!(t.ingress, r.ingress);
        assert_eq!(t.egress, r.egress);
        assert_eq!(t.messages, 3);
        assert_eq!(t.total_bytes(), r.total_bytes());
    }

    #[test]
    fn max_worker_ingress_excludes_server() {
        let s = TrafficStats::new(3);
        s.record(1, 0, 1000); // server ingress, must not count
        s.record(0, 2, 60);
        let r = s.report();
        assert_eq!(r.max_worker_ingress(), 60);
        assert_eq!(r.server_ingress(), 1000);
    }

    #[test]
    fn fault_counters_reconcile_sent_and_delivered() {
        let s = TrafficStats::new(2);
        // Attempt 1: dropped; attempt 2 (retry): delivered + duplicated.
        s.record_attempt(0, 1, 50);
        s.record_dropped(50);
        s.record_retry();
        s.record_attempt(0, 1, 50);
        s.record_delivery(1, 50);
        s.record_duplicated(50);
        s.record_delayed();
        let r = s.report();
        assert_eq!(r.bytes_sent(), 100);
        assert_eq!(r.bytes_delivered(), 50);
        assert_eq!(r.bytes_sent(), r.bytes_delivered() + r.dropped_bytes);
        assert_eq!(r.dup_bytes, 50);
        assert_eq!(r.retries, 1);
        assert_eq!(r.delayed_msgs, 1);
        assert_eq!(r.msgs(LinkClass::ServerToWorker), 2, "both attempts sent");
    }

    #[test]
    fn since_covers_fault_counters() {
        let s = TrafficStats::new(2);
        s.record_attempt(0, 1, 10);
        s.record_dropped(10);
        let before = s.report();
        s.record_retry();
        s.record_duplicated(4);
        let d = s.report().since(&before);
        assert_eq!(d.dropped_bytes, 0);
        assert_eq!(d.retries, 1);
        assert_eq!(d.dup_bytes, 4);
    }

    #[test]
    fn out_of_range_links_are_ignored_not_panicking() {
        let s = TrafficStats::new(3);
        // A link to a worker slot that no longer (or does not yet) exist.
        s.record(0, 7, 100);
        s.record(7, 0, 100);
        s.record_attempt(0, 9, 10);
        s.record_delivery(9, 10);
        let r = s.report();
        assert_eq!(r.bytes_sent(), 0);
        assert_eq!(r.bytes_delivered(), 0);
        assert_eq!(r.total_bytes(), 0);
    }

    #[test]
    fn retired_peer_counters_freeze_not_drop() {
        let s = TrafficStats::new(3);
        s.record(0, 2, 100);
        s.record(2, 0, 40);
        s.retire(2);
        assert!(s.is_retired(2));
        // New traffic touching the retired peer is unaccounted on both
        // ends (no server egress for a dead downlink either).
        s.record(0, 2, 999);
        s.record(2, 0, 999);
        s.record(1, 2, 999);
        let r = s.report();
        // Historical totals survive — frozen, not dropped.
        assert_eq!(r.ingress[2], 100);
        assert_eq!(r.egress[2], 40);
        assert_eq!(r.server_ingress(), 40);
        assert_eq!(r.egress[0], 100);
        assert_eq!(r.total_bytes(), 140);
        // Other links keep accounting normally.
        s.record(0, 1, 7);
        assert_eq!(s.report().ingress[1], 7);
        // Conservation still holds: no half-recorded attempts.
        let r = s.report();
        assert_eq!(r.bytes_sent(), r.bytes_delivered());
    }

    #[test]
    fn retired_flags_do_not_change_checkpoint_format() {
        let s = TrafficStats::new(3);
        s.record(0, 1, 10);
        s.retire(1);
        let words = s.state_words();
        assert_eq!(words.len(), 2 * 3 + 13, "wire format unchanged");
        let fresh = TrafficStats::new(3);
        fresh.load_state_words(&words).unwrap();
        assert_eq!(fresh.report(), s.report());
        assert!(!fresh.is_retired(1), "retirement is not persisted");
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        use std::sync::Arc;
        let s = Arc::new(TrafficStats::new(4));
        let mut handles = Vec::new();
        for t in 1..4usize {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s.record(t, 0, 3);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let r = s.report();
        assert_eq!(r.server_ingress(), 9000);
        assert_eq!(r.msgs(LinkClass::WorkerToServer), 3000);
    }
}
