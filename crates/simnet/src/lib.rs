//! # md-simnet
//!
//! A simulated distributed cluster for the MD-GAN experiments.
//!
//! The paper *emulates* its distributed deployment ("computation order of
//! interactions ... are preserved; raw timing performances ... are in this
//! context inaccessible"). This crate reproduces that methodology:
//!
//! * [`network::Router`] / [`network::Endpoint`] — message passing between
//!   one central server (node 0) and `N` workers (nodes `1..=N`) over
//!   crossbeam channels, usable from one thread (deterministic scheduler)
//!   or from one thread per node,
//! * [`stats::TrafficStats`] — byte-accurate ingress/egress accounting per
//!   node and per link class (server→worker, worker→server,
//!   worker→worker), the quantities behind Tables III/IV and Figure 2,
//! * [`fault::CrashSchedule`] — fail-stop worker crashes (worker and its
//!   data shard disappear), the mechanism behind Figure 5,
//! * [`fault::FaultPlan`] / [`fault::FaultState`] — seeded, deterministic
//!   lossy-network injection (drops, duplication, bounded delay,
//!   partitions) applied per data send,
//! * [`detect::FailureDetector`] — timeout-based worker suspicion (with
//!   optional permanent eviction) for the oracle-free robust runtimes,
//! * [`membership::ChurnPlan`] / [`membership::Membership`] — seeded
//!   join/leave/crash schedules and the epoch-numbered alive view that
//!   elastic runs rebalance the SPLIT and swap schedules over.

pub mod detect;
pub mod fault;
pub mod membership;
pub mod network;
pub mod stats;

pub use detect::{FailureDetector, Liveness};
pub use fault::{CrashSchedule, Delivery, Fate, FaultPlan, FaultState, Partition, PartitionScope};
pub use membership::{ChurnEvent, ChurnKind, ChurnPlan, MemberStatus, Membership};
pub use network::{Endpoint, Envelope, GatherResult, NodeId, Router, SendError, SERVER};
pub use stats::{LinkClass, TrafficReport, TrafficStats};
