//! # md-simnet
//!
//! A simulated distributed cluster for the MD-GAN experiments.
//!
//! The paper *emulates* its distributed deployment ("computation order of
//! interactions ... are preserved; raw timing performances ... are in this
//! context inaccessible"). This crate reproduces that methodology:
//!
//! * [`network::Router`] / [`network::Endpoint`] — message passing between
//!   one central server (node 0) and `N` workers (nodes `1..=N`) over
//!   crossbeam channels, usable from one thread (deterministic scheduler)
//!   or from one thread per node,
//! * [`stats::TrafficStats`] — byte-accurate ingress/egress accounting per
//!   node and per link class (server→worker, worker→server,
//!   worker→worker), the quantities behind Tables III/IV and Figure 2,
//! * [`fault::CrashSchedule`] — fail-stop worker crashes (worker and its
//!   data shard disappear), the mechanism behind Figure 5.

pub mod fault;
pub mod network;
pub mod stats;

pub use fault::CrashSchedule;
pub use network::{Endpoint, Envelope, NodeId, Router, SERVER};
pub use stats::{LinkClass, TrafficReport, TrafficStats};
