//! Offline stand-in for the `criterion` crate.
//!
//! A real (wall-clock) micro-benchmark harness with criterion's API shape:
//! `benchmark_group`, chained `sample_size`/`measurement_time`/
//! `warm_up_time`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`. No statistics beyond
//! min/mean/max per-iteration time and no HTML reports — results print to
//! stdout, which is what the repo's bench workflow consumes.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Sampling parameters shared by a group's benchmarks.
#[derive(Clone, Debug)]
struct SampleConfig {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs and times the
/// routine.
pub struct Bencher<'a> {
    config: &'a SampleConfig,
    /// Per-sample mean iteration times, filled by `iter`.
    samples: Vec<Duration>,
}

impl Bencher<'_> {
    /// Times `routine`: warms up for the configured time, then collects
    /// `sample_size` samples, each a timed batch sized so all samples fit
    /// the measurement budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, also calibrating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.config.warm_up_time {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Size each sample's batch so sample_size batches fill the budget.
        let budget = self.config.measurement_time.as_secs_f64();
        let batch =
            ((budget / self.config.sample_size as f64 / per_iter.max(1e-9)).ceil() as u64).max(1);

        self.samples.clear();
        for _ in 0..self.config.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / batch as u32);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    config: SampleConfig,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    fn run_one(&self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            config: &self.config,
            samples: Vec::new(),
        };
        f(&mut b);
        if b.samples.is_empty() {
            println!("{}/{id:<24} (no samples)", self.name);
            return;
        }
        let min = b.samples.iter().min().copied().unwrap_or_default();
        let max = b.samples.iter().max().copied().unwrap_or_default();
        let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
        println!(
            "{}/{:<24} time: [{} {} {}]",
            self.name,
            id,
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max)
        );
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        self.run_one(&id.id, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        self.run_one(&id.id, |b| f(b, input));
        self
    }

    /// Ends the group (a no-op beyond API parity).
    pub fn finish(self) {}
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            config: SampleConfig::default(),
        }
    }

    /// Runs a standalone benchmark with default sampling.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let g = BenchmarkGroup {
            name: "bench".into(),
            config: SampleConfig::default(),
        };
        g.run_one(&id.id, f);
        self
    }
}

/// Bundles benchmark functions into a group runner (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups (mirrors
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut calls = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        g.finish();
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("fedavg", 5).id, "fedavg/5");
        assert_eq!(BenchmarkId::from_parameter(128).id, "128");
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert!(fmt_duration(Duration::from_nanos(12)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
    }
}
