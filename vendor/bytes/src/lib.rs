//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace uses: an immutable [`Bytes`] buffer
//! (here a plain `Vec<u8>` without the refcounted zero-copy slicing of the
//! real crate — none of our call sites slice), a growable [`BytesMut`] with
//! the little-endian `put_*` writers, and the [`Buf`] reader trait for
//! `&[u8]`.

use std::ops::Deref;

/// Immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Copies the contents out.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Growable byte buffer with little-endian writers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Byte-sink trait (mirrors `bytes::BufMut` for the methods we use).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian f32.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Byte-source trait (mirrors `bytes::Buf` for the methods we use).
///
/// # Panics
/// Like the real crate, the `get_*`/`advance`/`copy_to_slice` methods panic
/// when the buffer has fewer than the required bytes; callers guard with
/// [`Buf::remaining`].
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);
    /// Copies `dest.len()` bytes out and advances.
    fn copy_to_slice(&mut self, dest: &mut [u8]);
    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    /// Reads a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    /// Reads a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    /// Reads a little-endian f32.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dest: &mut [u8]) {
        assert!(dest.len() <= self.len(), "copy_to_slice past end of buffer");
        dest.copy_from_slice(&self[..dest.len()]);
        self.advance(dest.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut m = BytesMut::with_capacity(32);
        m.put_slice(b"HDR");
        m.put_u8(0xAB);
        assert_eq!(&m[3..], &[0xAB]);
        m.put_u32_le(7);
        m.put_u64_le(u64::MAX - 1);
        m.put_f32_le(-1.5);
        let b = m.freeze();
        let mut r: &[u8] = &b;
        let mut hdr = [0u8; 3];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR");
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_f32_le(), -1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn advance_skips() {
        let data = [1u8, 2, 3, 4, 5];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.remaining(), 3);
        let mut next = [0u8; 1];
        r.copy_to_slice(&mut next);
        assert_eq!(next[0], 3);
        assert_eq!(r.remaining(), 2);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn overread_panics() {
        let mut r: &[u8] = &[1u8, 2];
        r.get_u32_le();
    }

    #[test]
    fn bytes_derefs_to_slice() {
        let b = Bytes::from(vec![9u8, 8, 7]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.iter().copied().max(), Some(9));
        assert_eq!(b.to_vec(), vec![9, 8, 7]);
    }
}
