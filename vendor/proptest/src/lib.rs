//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: range and
//! tuple strategies, `collection::vec`, `ProptestConfig::with_cases`, and
//! the `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from real proptest: no shrinking (a failing case panics with
//! the assert message directly) and a fixed per-test seed derived from the
//! test name, so failures are reproducible run-to-run.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration (mirrors `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod test_runner {
    //! The RNG handed to strategies.

    use super::*;

    /// Deterministic per-test generator (seeded from the test name).
    #[derive(Clone, Debug)]
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// Builds the RNG for a named test; same name, same stream.
        pub fn deterministic(test_name: &str) -> Self {
            // FNV-1a over the name gives each property its own stream.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use rand::{Rng, SampleRange};

    /// A recipe for generating random values (mirrors
    /// `proptest::strategy::Strategy`, minus shrinking).
    pub trait Strategy {
        /// The type of value produced.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<T> Strategy for core::ops::Range<T>
    where
        core::ops::Range<T>: SampleRange + Clone,
    {
        type Value = <core::ops::Range<T> as SampleRange>::Output;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            rng.0.gen_range(self.clone())
        }
    }

    impl<T> Strategy for core::ops::RangeInclusive<T>
    where
        core::ops::RangeInclusive<T>: SampleRange + Clone,
    {
        type Value = <core::ops::RangeInclusive<T> as SampleRange>::Output;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            rng.0.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Strategy for `Vec`s with random length (mirrors
    /// `proptest::collection::vec`).
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Vectors of `element`-drawn values whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.0.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Declares property tests (mirrors `proptest::proptest!`).
///
/// Each `fn name(arg in strategy, ...) { body }` item becomes a `#[test]`
/// that samples all strategies `cases` times and runs the body per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..cfg.cases {
                    $(let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts two values are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

pub mod prelude {
    //! Everything a property-test file needs (mirrors `proptest::prelude`).
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in 0u64..100, z in 0.5f32..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 100);
            prop_assert!((0.5..2.0).contains(&z), "{z}");
        }

        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec(1usize..4, 0..4)) {
            prop_assert!(v.len() < 4);
            prop_assert!(v.iter().all(|&e| (1..4).contains(&e)));
        }

        #[test]
        fn tuples_sample_elementwise(t in (0usize..5, 0usize..5, 1u64..10_000)) {
            let (a, b, c) = t;
            prop_assert!(a < 5 && b < 5);
            prop_assert!((1..10_000).contains(&c));
        }
    }

    #[test]
    fn per_test_rng_is_deterministic() {
        let mut a = TestRng::deterministic("some_test");
        let mut b = TestRng::deterministic("some_test");
        let s = 0usize..1000;
        for _ in 0..32 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
