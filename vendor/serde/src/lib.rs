//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names plus the derive
//! macros (re-exported from the no-op `serde_derive`). The traits carry no
//! methods because nothing in this workspace serializes through serde —
//! the derives are annotations only; real persistence is hand-rolled.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

pub mod de {
    //! Deserialization traits (name parity with real serde).
    pub use crate::DeserializeOwned;
}
