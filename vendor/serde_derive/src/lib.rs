//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on config and message
//! types as forward-looking annotations, but nothing actually serializes
//! through serde (all persistence is hand-rolled CSV/JSONL/binary). These
//! derives therefore expand to nothing; `attributes(serde)` keeps field
//! attributes like `#[serde(skip)]` accepted.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
