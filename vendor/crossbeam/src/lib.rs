//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the two pieces this workspace uses — `crossbeam::channel`
//! (unbounded MPSC channels) and `crossbeam::thread::scope` (scoped
//! threads) — implemented on top of `std::sync::mpsc` and
//! `std::thread::scope`. The API shapes match crossbeam 0.8 closely enough
//! that call sites compile unchanged.

pub mod channel {
    //! Unbounded channels (mirrors `crossbeam::channel`).
    //!
    //! Backed by `std::sync::mpsc`: senders are cheaply cloneable, each
    //! receiver is owned by exactly one endpoint — exactly the topology the
    //! simnet router builds.

    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

pub mod thread {
    //! Scoped threads (mirrors `crossbeam::thread`).

    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::thread as sthread;

    /// Error payload of a panicked scope (a `Box<dyn Any>` like crossbeam's).
    pub type ScopeError = Box<dyn Any + Send + 'static>;

    /// A scope handle; spawned closures receive a reference to it so they
    /// can spawn further threads (crossbeam's signature).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope sthread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope, matching
        /// crossbeam's `|s|` signature (callers here ignore it as `|_|`).
        pub fn spawn<F, T>(&self, f: F) -> sthread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope whose spawned threads are all joined before
    /// this function returns. Returns `Err` if any spawned thread (or `f`
    /// itself) panicked, like crossbeam — callers `.expect(...)` on it.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        // std::thread::scope resumes unwinding when an unjoined scoped
        // thread panicked; catching that reproduces crossbeam's Result.
        catch_unwind(AssertUnwindSafe(move || {
            sthread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn channel_roundtrip_and_try_recv() {
        let (tx, rx) = crate::channel::unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert!(matches!(
            rx.try_recv(),
            Err(crate::channel::TryRecvError::Empty)
        ));
        drop((tx, tx2));
        assert!(matches!(
            rx.try_recv(),
            Err(crate::channel::TryRecvError::Disconnected)
        ));
    }

    #[test]
    fn scope_joins_all_threads() {
        let n = AtomicUsize::new(0);
        crate::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| n.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn scope_reports_child_panics_as_err() {
        let r = crate::thread::scope(|s| {
            s.spawn(|_| panic!("child down"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = AtomicUsize::new(0);
        crate::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| n.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 1);
    }
}
