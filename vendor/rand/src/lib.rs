//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the exact subset of the rand 0.8 API the workspace uses:
//! [`rngs::StdRng`], [`RngCore`], [`SeedableRng`] and the [`Rng`] extension
//! trait with `gen::<T>()` and `gen_range(range)`.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream rand's ChaCha12, but every consumer in this
//! workspace only relies on *self-consistent* determinism (same seed, same
//! stream), never on matching upstream byte-for-byte.

/// Low-level generator interface (mirrors `rand::RngCore`).
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }
}

/// Seedable construction (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;
    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait Uniform: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Uniform for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Uniform for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Uniform for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Uniform for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl Uniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Uniform for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value from the range.
    fn draw<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn draw<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                // Widening-multiply bounded draw (Lemire, without the
                // rejection step — the bias is < 2^-64 * span, irrelevant
                // for simulation workloads).
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn draw<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range in gen_range");
                if s == <$t>::MIN && e == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (s..e + 1).draw(rng)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn draw<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                self.start + <$t as Uniform>::draw(rng) * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// High-level convenience methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Uniform>(&mut self) -> T {
        T::draw(self)
    }
    /// Draws a value from `range`.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.draw(self)
    }
    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Uniform>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — a fast, high-quality 256-bit generator. Stands in for
    /// `rand::rngs::StdRng` (see the crate docs for the compatibility note).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl StdRng {
        /// Copies out the raw 256-bit xoshiro state (checkpoint support).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`].
        ///
        /// An all-zero state is a fixed point of xoshiro and can never be
        /// produced by [`SeedableRng::from_seed`], so it is re-derived the
        /// same way `from_seed` does rather than trusted.
        pub fn from_state(mut s: [u64; 4]) -> Self {
            if s == [0; 4] {
                let mut sm = 0x9E37_79B9_7F4A_7C15u64;
                for v in &mut s {
                    *v = splitmix64(&mut sm);
                }
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is a fixed point of xoshiro; re-derive.
            if s == [0; 4] {
                let mut sm = 0x9E37_79B9_7F4A_7C15u64;
                for v in &mut s {
                    *v = splitmix64(&mut sm);
                }
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..13 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // The zero fixed point is rejected, matching from_seed.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f32 = r.gen();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v), "{v}");
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = StdRng::seed_from_u64(0);
        let draws: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(draws.iter().any(|&v| v != 0));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
