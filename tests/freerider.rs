//! Free-rider acceptance: data-free workers fabricating plausible
//! feedbacks (pure noise, delayed echo, pre-trained-D mimicry) must be
//! flagged by the server-side feedback forensics and permanently evicted
//! through the failure-detector → membership path, on both lock-step
//! runtimes bit-identically, and the defended run's final FID must not be
//! worse than the undefended one under a 30% free-rider fraction.

use mdgan_repro::core::byzantine::Attack;
use mdgan_repro::core::config::{GanHyper, KPolicy, MdGanConfig, SwapPolicy};
use mdgan_repro::core::experiments::{run_freerider_with, ExperimentScale};
use mdgan_repro::core::mdgan::threaded::run_threaded;
use mdgan_repro::core::{ArchSpec, MdGan};
use mdgan_repro::data::synthetic::{mnist_like, Family};
use mdgan_repro::data::Dataset;
use mdgan_repro::simnet::MemberStatus;
use mdgan_repro::telemetry::{Counter, Event, Recorder};
use mdgan_repro::tensor::rng::Rng64;
use std::sync::Arc;

const WORKERS: usize = 4;
const ITERS: usize = 200;

/// Master seed; override with `FREERIDER_SEED=<n>` so CI can sweep several
/// attack streams without recompiling (the matrix runs 7, 21 and 1337).
fn freerider_seed() -> u64 {
    std::env::var("FREERIDER_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

fn shards() -> Vec<Dataset> {
    let data = mnist_like(12, 512, 11, 0.08);
    let mut rng = Rng64::seed_from_u64(11);
    data.shard_iid(WORKERS, &mut rng)
}

fn cfg(attacks: Vec<Attack>, defended: bool) -> MdGanConfig {
    let mut c = MdGanConfig {
        workers: WORKERS,
        // One shared noise batch per iteration: the forensics' peer-cosine
        // signal scores every heard worker against one comparable group.
        k: KPolicy::One,
        epochs_per_swap: 1.0,
        swap: SwapPolicy::Disabled,
        hyper: GanHyper {
            batch: 10,
            ..GanHyper::default()
        },
        iterations: ITERS,
        seed: freerider_seed(),
        attacks,
        ..MdGanConfig::default()
    };
    c.defense.enabled = defended;
    c.robust.suspect_after = 2;
    c.robust.evict_after = 2;
    c.robust.probe_period = 1;
    c
}

/// Each of the three attack strategies is flagged by the forensics and
/// graduates into a permanent membership eviction, leaving the honest
/// majority training on finite parameters.
#[test]
fn every_strategy_is_flagged_and_evicted() {
    for attack in [
        Attack::PureNoise { std: 5.0 },
        Attack::DelayedEcho,
        Attack::PretrainedMimic,
    ] {
        let spec = ArchSpec::mlp_mnist_scaled(12);
        let rec = Arc::new(Recorder::enabled());
        let mut md =
            MdGan::new(&spec, shards(), cfg(vec![attack], true)).with_telemetry(Arc::clone(&rec));
        for _ in 0..ITERS {
            md.step();
        }
        assert!(
            rec.counter(Counter::WorkersFlagged) >= 1,
            "{attack:?} (seed {}) never flagged",
            freerider_seed()
        );
        assert_eq!(
            rec.counter(Counter::FreeridersEvicted),
            1,
            "{attack:?} (seed {}) not evicted exactly once",
            freerider_seed()
        );
        assert!(rec
            .events()
            .iter()
            .any(|e| matches!(e.event, Event::FreeriderEvicted { worker: 1, .. })));
        assert_eq!(md.membership().status(0), MemberStatus::Evicted);
        for w in 1..WORKERS {
            assert_eq!(
                md.membership().status(w),
                MemberStatus::Alive,
                "{attack:?}: honest worker {w} lost"
            );
        }
        assert!(md.gen_params().iter().all(|v| v.is_finite()));
    }
}

/// Sequential and threaded runtimes make identical forensics decisions
/// and produce bit-identical generators with attacks, defense and
/// eviction all active.
#[test]
fn sequential_threaded_bit_identical_with_defense() {
    let attacks = vec![Attack::PureNoise { std: 5.0 }];
    let spec = ArchSpec::mlp_mnist_scaled(12);

    let threaded = run_threaded(
        &spec,
        shards(),
        cfg(attacks.clone(), true),
        None,
        ITERS,
        1_000_000,
    );

    let mut seq = MdGan::new(&spec, shards(), cfg(attacks, true));
    for _ in 0..ITERS {
        seq.step();
    }

    assert_eq!(
        threaded.gen_params,
        seq.gen_params(),
        "generator params diverged under defense (seed {})",
        freerider_seed()
    );
    assert_eq!(
        threaded.traffic.class_bytes,
        seq.traffic().class_bytes,
        "traffic diverged"
    );
    assert_eq!(threaded.alive, seq.alive_workers(), "alive sets diverged");
    assert_eq!(seq.membership().status(0), MemberStatus::Evicted);
}

/// Under a 30% pure-noise free-rider fraction, enabling the defense
/// restores the final FID to at least the undefended run's level (the
/// undefended server averages fabricated gradients into every update).
#[test]
fn defense_restores_fid_under_30pct_freeriders() {
    let scale = ExperimentScale {
        img: 12,
        train_n: 512,
        test_n: 128,
        iters: 60,
        eval_every: 30,
        eval_samples: 64,
        seed: freerider_seed(),
    };
    let points = run_freerider_with(
        Family::MnistLike,
        mdgan_repro::core::arch::ArchKind::Mlp,
        scale,
        WORKERS,
        &[0.3],
        &["noise"],
        &Arc::new(Recorder::enabled()),
    );
    assert_eq!(points.len(), 2);
    let (undefended, defended) = (&points[0], &points[1]);
    assert!(!undefended.defended && defended.defended);
    assert_eq!(defended.evicted, 1, "seed {}", freerider_seed());
    assert!(
        defended.final_scores.fid <= undefended.final_scores.fid,
        "seed {}: defended FID {} worse than undefended {}",
        freerider_seed(),
        defended.final_scores.fid,
        undefended.final_scores.fid
    );
}
