//! Training-health acceptance: an injected NaN must be detected, rolled
//! back, and the run must still complete **bit-identically** to an
//! unperturbed run, with the recovery counters visible in the telemetry
//! JSONL run record.

use mdgan_repro::core::config::{GanHyper, KPolicy, MdGanConfig, SwapPolicy};
use mdgan_repro::core::{MdGan, Recoverable, SupervisorConfig, TrainSupervisor};
use mdgan_repro::data::synthetic::mnist_like;
use mdgan_repro::data::Dataset;
use mdgan_repro::telemetry::{Counter, Recorder, RunRecord};
use mdgan_repro::tensor::rng::Rng64;
use std::sync::Arc;

const IMG: usize = 12;
const WORKERS: usize = 3;

fn shards() -> Vec<Dataset> {
    let data = mnist_like(IMG, 512, 42, 0.08);
    let mut rng = Rng64::seed_from_u64(9);
    data.shard_iid(WORKERS, &mut rng)
}

fn make_gan(iters: usize) -> MdGan {
    let spec = mdgan_repro::core::ArchSpec::mlp_mnist_scaled(IMG);
    let cfg = MdGanConfig {
        workers: WORKERS,
        k: KPolicy::One,
        epochs_per_swap: 1.0,
        swap: SwapPolicy::Derangement,
        hyper: GanHyper {
            batch: 8,
            ..GanHyper::default()
        },
        iterations: iters,
        seed: 77,
        ..MdGanConfig::default()
    };
    MdGan::new(&spec, shards(), cfg)
}

#[test]
fn injected_nan_rolls_back_and_completes_bit_identically() {
    // Unperturbed reference: 8 plain iterations.
    let mut reference = make_gan(8);
    for _ in 0..8 {
        reference.step_once();
    }

    let dir = std::env::temp_dir().join(format!("mdgan-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("sup.ckpt");

    let rec = Arc::new(Recorder::enabled());
    let mut sup = TrainSupervisor::new(SupervisorConfig {
        ckpt_path: Some(ckpt.clone()),
        ckpt_every: 2,
        ..SupervisorConfig::default()
    })
    .with_telemetry(Arc::clone(&rec));
    sup.inject_nan_at = Some(5);

    let mut gan = make_gan(8);
    let report = sup.run(&mut gan, 8).unwrap();

    // Detection fired once, rolled back once, and the run completed.
    assert_eq!(report.rollbacks, 1);
    assert_eq!(gan.iteration(), 8);
    // The replay from the last good checkpoint erased the poison: the full
    // captured state (params, optimizer moments, RNG streams, counters) is
    // bit-identical to the run that never saw a NaN.
    assert_eq!(gan.capture(), reference.capture());

    // Counters surface both on the recorder and in the JSONL run record.
    assert_eq!(rec.counter(Counter::NanDetected), 1);
    assert_eq!(rec.counter(Counter::Rollbacks), 1);
    assert!(rec.counter(Counter::CheckpointsWritten) >= 4);
    let jsonl = RunRecord::new("recovery-acceptance").to_jsonl(&rec);
    assert!(jsonl.contains(r#""nan_detected":1"#), "{jsonl}");
    assert!(jsonl.contains(r#""rollbacks":1"#), "{jsonl}");

    // A second supervised run over the same checkpoint path resumes at the
    // target and does no further work.
    let mut sup2 = TrainSupervisor::new(SupervisorConfig {
        ckpt_path: Some(ckpt),
        ckpt_every: 2,
        ..SupervisorConfig::default()
    })
    .with_telemetry(Arc::clone(&rec));
    let mut gan2 = make_gan(8);
    let report2 = sup2.run(&mut gan2, 8).unwrap();
    assert_eq!(report2.resumed_from, Some(8));
    assert_eq!(report2.steps_taken, 0);
    assert_eq!(gan2.capture(), reference.capture());
    assert_eq!(rec.counter(Counter::ResumeCount), 1);

    let _ = std::fs::remove_dir_all(&dir);
}
