//! End-to-end training behaviour: every competitor must actually *learn*
//! (FID drops substantially from the untrained starting point) on the
//! synthetic MNIST-like dataset, at test scale.

use mdgan_repro::core::config::{FlGanConfig, GanHyper, KPolicy, MdGanConfig, SwapPolicy};
use mdgan_repro::core::flgan::FlGan;
use mdgan_repro::core::standalone::StandaloneGan;
use mdgan_repro::core::{ArchSpec, Evaluator, MdGan};
use mdgan_repro::data::synthetic::mnist_like;
use mdgan_repro::data::Dataset;
use mdgan_repro::tensor::rng::Rng64;

const IMG: usize = 12;
const ITERS: usize = 300;

fn setup() -> (Dataset, Dataset, Evaluator, ArchSpec) {
    let data = mnist_like(IMG, 1024 + 256, 42, 0.08);
    let (train, test) = data.split_test(256);
    let evaluator = Evaluator::new(&train, &test, 128, 42);
    let spec = ArchSpec::mlp_mnist_scaled(IMG);
    (train, test, evaluator, spec)
}

/// FID at iteration 0 vs best over the run must improve by a healthy
/// margin; IS must rise above the mode-collapse floor of 1.
fn assert_learned(label: &str, timeline: &mdgan_repro::core::ScoreTimeline) {
    let first = timeline.points().first().expect("has points").1;
    let best_fid = timeline.best_fid().unwrap();
    let best_is = timeline.best_is().unwrap();
    assert!(
        best_fid < 0.7 * first.fid,
        "{label}: FID did not improve enough ({} -> best {})",
        first.fid,
        best_fid
    );
    assert!(best_is > 1.5, "{label}: IS stuck at {best_is}");
    assert!(timeline.points().iter().all(|(_, s)| s.fid.is_finite()));
}

#[test]
fn standalone_gan_learns() {
    let (train, _test, mut evaluator, spec) = setup();
    let mut rng = Rng64::seed_from_u64(1);
    let mut gan = StandaloneGan::new(
        &spec,
        train,
        GanHyper {
            batch: 16,
            ..GanHyper::default()
        },
        &mut rng,
    );
    let timeline = gan.train(ITERS, 50, Some(&mut evaluator));
    assert_learned("standalone", &timeline);
}

#[test]
fn mdgan_learns_across_workers() {
    let (train, _test, mut evaluator, spec) = setup();
    let mut rng = Rng64::seed_from_u64(2);
    let shards = train.shard_iid(4, &mut rng);
    let cfg = MdGanConfig {
        workers: 4,
        k: KPolicy::LogN,
        epochs_per_swap: 1.0,
        swap: SwapPolicy::Derangement,
        hyper: GanHyper {
            batch: 16,
            ..GanHyper::default()
        },
        iterations: ITERS,
        seed: 3,
        crash: Default::default(),
        ..MdGanConfig::default()
    };
    let mut md = MdGan::new(&spec, shards, cfg);
    let timeline = md.train(ITERS, 50, Some(&mut evaluator));
    assert_learned("MD-GAN", &timeline);
    // The distributed run also paid a communication bill.
    assert!(md.traffic().total_bytes() > 0);
}

#[test]
fn flgan_learns_across_workers() {
    let (train, _test, mut evaluator, spec) = setup();
    let mut rng = Rng64::seed_from_u64(4);
    let shards = train.shard_iid(4, &mut rng);
    let cfg = FlGanConfig {
        workers: 4,
        epochs_per_round: 1.0,
        hyper: GanHyper {
            batch: 16,
            ..GanHyper::default()
        },
        iterations: ITERS,
        seed: 5,
    };
    let mut fl = FlGan::new(&spec, shards, cfg);
    let timeline = fl.train(ITERS, 50, Some(&mut evaluator));
    assert_learned("FL-GAN", &timeline);
}

#[test]
fn mdgan_with_crashes_keeps_training() {
    let (train, _test, mut evaluator, spec) = setup();
    let mut rng = Rng64::seed_from_u64(6);
    let shards = train.shard_iid(4, &mut rng);
    let crash = mdgan_repro::simnet::CrashSchedule::new(vec![(ITERS / 3, 1), (2 * ITERS / 3, 3)]);
    let cfg = MdGanConfig {
        workers: 4,
        k: KPolicy::LogN,
        epochs_per_swap: 1.0,
        swap: SwapPolicy::Derangement,
        hyper: GanHyper {
            batch: 16,
            ..GanHyper::default()
        },
        iterations: ITERS,
        seed: 7,
        crash,
        ..MdGanConfig::default()
    };
    let mut md = MdGan::new(&spec, shards, cfg);
    let timeline = md.train(ITERS, 50, Some(&mut evaluator));
    assert_eq!(md.alive_workers(), vec![2, 4]);
    assert_learned("MD-GAN with crashes", &timeline);
}
