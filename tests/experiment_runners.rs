//! The figure runners of `mdgan_core::experiments` must produce complete,
//! deterministic output at test scale.

use mdgan_repro::core::arch::ArchKind;
use mdgan_repro::core::experiments::{
    run_celeba, run_convergence, run_faults, run_scalability, ConvergenceConfig, ExperimentScale,
    WorkloadMode,
};
use mdgan_repro::data::synthetic::Family;

fn tiny_scale() -> ExperimentScale {
    ExperimentScale {
        img: 12,
        train_n: 256,
        test_n: 64,
        iters: 16,
        eval_every: 8,
        eval_samples: 48,
        seed: 77,
    }
}

#[test]
fn convergence_runner_is_deterministic() {
    let cfg = ConvergenceConfig {
        workers: 3,
        b_small: 4,
        b_large: 8,
        ..ConvergenceConfig::new(Family::MnistLike, ArchKind::Mlp, tiny_scale())
    };
    let a = run_convergence(cfg);
    let b = run_convergence(cfg);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.label, y.label);
        assert_eq!(
            x.to_csv(),
            y.to_csv(),
            "curve {} not deterministic",
            x.label
        );
    }
}

#[test]
fn convergence_runner_cifar_cnn_panel() {
    let mut scale = tiny_scale();
    scale.img = 8; // smallest valid CNN size
    scale.iters = 6;
    scale.eval_every = 3;
    let cfg = ConvergenceConfig {
        workers: 2,
        b_small: 4,
        b_large: 6,
        ..ConvergenceConfig::new(Family::CifarLike, ArchKind::Cnn, scale)
    };
    let curves = run_convergence(cfg);
    assert_eq!(curves.len(), 6);
    for c in &curves {
        let (_, s) = c.timeline.last().unwrap();
        assert!(s.fid.is_finite(), "{}: FID not finite", c.label);
    }
}

#[test]
fn scalability_runner_shapes() {
    let points = run_scalability(Family::MnistLike, tiny_scale(), &[2, 4], 4);
    assert_eq!(points.len(), 8);
    for p in &points {
        assert!(p.final_scores.fid.is_finite());
        match p.mode {
            WorkloadMode::ConstantWorker => assert_eq!(p.batch, 4),
            WorkloadMode::ConstantServer => assert_eq!(p.batch, 4 * 2 / p.n),
        }
    }
}

#[test]
fn faults_runner_produces_four_curves() {
    let curves = run_faults(Family::MnistLike, ArchKind::Mlp, tiny_scale(), 3);
    let labels: Vec<&str> = curves.iter().map(|c| c.label.as_str()).collect();
    assert!(labels.contains(&"MD-GAN with crashes"));
    assert!(labels.contains(&"MD-GAN no crash"));
    assert_eq!(curves.len(), 4);
}

#[test]
fn celeba_runner_covers_all_competitors() {
    let mut scale = tiny_scale();
    scale.img = 16; // celeba generator needs >= 16
    scale.iters = 4;
    scale.eval_every = 2;
    let curves = run_celeba(scale, 10);
    // standalone + FL-GAN {1,5} + MD-GAN {1,5}
    assert_eq!(curves.len(), 5);
    assert!(curves.iter().any(|c| c.label.starts_with("standalone")));
    assert!(
        curves
            .iter()
            .filter(|c| c.label.starts_with("FL-GAN"))
            .count()
            == 2
    );
    assert!(
        curves
            .iter()
            .filter(|c| c.label.starts_with("MD-GAN"))
            .count()
            == 2
    );
}
