//! Elastic-membership acceptance: a 16-worker cluster under a seeded
//! churn plan (joins that bootstrap from a live snapshot, graceful leaves
//! that drain, fail-stop crashes) must complete on all three MD-GAN
//! runtimes, with the sequential and threaded runtimes bit-identical for
//! the same churn seed, and the SPLIT always covering exactly the alive
//! view.

use mdgan_repro::core::config::{GanHyper, KPolicy, MdGanConfig, SwapPolicy};
use mdgan_repro::core::mdgan::asynchronous::{AsyncConfig, AsyncMdGan};
use mdgan_repro::core::mdgan::threaded::run_threaded;
use mdgan_repro::core::{ArchSpec, MdGan};
use mdgan_repro::data::synthetic::mnist_like;
use mdgan_repro::data::Dataset;
use mdgan_repro::simnet::{ChurnEvent, ChurnKind, ChurnPlan, MemberStatus};
use mdgan_repro::telemetry::{Counter, Event, Recorder};
use mdgan_repro::tensor::rng::Rng64;
use std::sync::Arc;

const WORKERS: usize = 16;
const ITERS: usize = 14;

/// Churn seed; override with `CHURN_SEED=<n>` so CI can sweep several
/// fate streams without recompiling (the matrix runs 7, 21 and 1337).
fn churn_seed() -> u64 {
    std::env::var("CHURN_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

fn plan() -> ChurnPlan {
    ChurnPlan::seeded(churn_seed(), WORKERS, ITERS, 0.4, 0.2, 0.4)
}

fn shards(total: usize) -> Vec<Dataset> {
    let data = mnist_like(12, total * 32, 11, 0.08);
    let mut rng = Rng64::seed_from_u64(11);
    data.shard_iid(total, &mut rng)
}

fn cfg(churn: ChurnPlan) -> MdGanConfig {
    MdGanConfig {
        workers: WORKERS,
        k: KPolicy::LogN,
        epochs_per_swap: 1.0,
        swap: SwapPolicy::Derangement,
        hyper: GanHyper {
            batch: 4,
            ..GanHyper::default()
        },
        iterations: ITERS,
        seed: 21,
        churn,
        ..MdGanConfig::default()
    }
}

/// The CI seeds must all produce genuinely elastic runs: several joins,
/// several crashes and at least one graceful leave, all strictly mid-run.
#[test]
fn seeded_plan_has_required_churn() {
    let p = plan();
    assert!(p.joins() >= 3, "seed {}: {} joins", churn_seed(), p.joins());
    assert!(
        p.count(ChurnKind::Crash) >= 3,
        "seed {}: {} crashes",
        churn_seed(),
        p.count(ChurnKind::Crash)
    );
    assert!(
        p.count(ChurnKind::Leave) >= 1,
        "seed {}: {} leaves",
        churn_seed(),
        p.count(ChurnKind::Leave)
    );
    for e in p.events() {
        assert!(e.iter >= 1 && e.iter < ITERS, "event {e:?} not mid-run");
    }
}

/// Sequential and threaded runtimes replay the same churn plan into
/// bit-identical generators, byte-identical traffic (bootstrap transfers
/// included) and the same surviving membership view.
#[test]
fn sequential_threaded_bit_identical_under_churn() {
    let p = plan();
    let total = p.max_workers(WORKERS);
    let sh = shards(total);
    let spec = ArchSpec::mlp_mnist_scaled(12);

    let threaded = run_threaded(&spec, sh.clone(), cfg(p.clone()), None, ITERS, 1_000_000);

    let mut seq = MdGan::new(&spec, sh, cfg(p.clone()));
    for _ in 0..ITERS {
        seq.step();
    }

    assert_eq!(
        threaded.gen_params,
        seq.gen_params(),
        "generator params diverged under churn seed {}",
        churn_seed()
    );
    assert_eq!(
        threaded.traffic.class_bytes,
        seq.traffic().class_bytes,
        "traffic diverged"
    );
    assert_eq!(threaded.alive, seq.alive_workers(), "alive sets diverged");

    let expected_alive =
        WORKERS + p.joins() - p.count(ChurnKind::Leave) - p.count(ChurnKind::Crash);
    assert_eq!(seq.membership().alive_count(), expected_alive);
    assert_eq!(seq.alive_workers().len(), expected_alive);
}

/// The event-driven async runtime takes the same plan (keyed on its
/// update counter), completes, and is run-to-run deterministic.
#[test]
fn async_completes_and_is_deterministic_under_churn() {
    let p = plan();
    let total = p.max_workers(WORKERS);
    let spec = ArchSpec::mlp_mnist_scaled(12);
    let run = || {
        let mut md = AsyncMdGan::new(&spec, shards(total), cfg(p.clone()), AsyncConfig::default());
        for _ in 0..3 * ITERS {
            md.step_event();
        }
        (md.gen_params(), md.membership().clone())
    };
    let (p1, m1) = run();
    let (p2, m2) = run();
    assert_eq!(p1, p2, "async churn run must be seed-deterministic");
    assert_eq!(m1, m2);
    assert!(p1.iter().all(|v| v.is_finite()));
    assert_eq!(
        m1.alive_count(),
        WORKERS + p.joins() - p.count(ChurnKind::Leave) - p.count(ChurnKind::Crash)
    );
}

/// A mid-run join bootstraps from a server-held snapshot and contributes
/// feedback within the very iteration it joined.
#[test]
fn join_bootstraps_and_contributes_within_one_epoch() {
    let p = ChurnPlan::from_events(
        WORKERS,
        vec![ChurnEvent {
            iter: 3,
            worker: WORKERS + 1,
            kind: ChurnKind::Join,
        }],
    )
    .unwrap();
    let total = p.max_workers(WORKERS);
    let spec = ArchSpec::mlp_mnist_scaled(12);
    let rec = Arc::new(Recorder::enabled());
    let mut md = MdGan::new(&spec, shards(total), cfg(p)).with_telemetry(Arc::clone(&rec));
    for _ in 0..4 {
        md.step();
    }
    assert!(rec.events().iter().any(|e| matches!(
        e.event,
        Event::BootstrapDone {
            iter: 3,
            worker: 17,
            ..
        }
    )));
    assert_eq!(rec.counter(Counter::WorkersJoined), 1);
    assert_eq!(rec.counter(Counter::Bootstraps), 1);
    // The joiner produced feedback in iteration 3 — the same iteration its
    // join fired (one feedback per participated iteration).
    assert_eq!(rec.worker_stats()[WORKERS + 1].feedbacks, 1);
    assert_eq!(md.membership().status(WORKERS), MemberStatus::Alive);
}

/// Robust mode (no crash oracle): a silently-crashed worker is suspected
/// by missed deadlines, then permanently evicted, and the SPLIT keeps
/// covering the survivors (the run completes with finite parameters).
#[test]
fn crash_is_evicted_and_split_covers_survivors() {
    let p = ChurnPlan::from_events(
        WORKERS,
        vec![ChurnEvent {
            iter: 2,
            worker: 5,
            kind: ChurnKind::Crash,
        }],
    )
    .unwrap();
    let spec = ArchSpec::mlp_mnist_scaled(12);
    let mut c = cfg(p);
    c.robust.enabled = true;
    c.robust.suspect_after = 2;
    c.robust.evict_after = 2;
    c.robust.probe_period = 1;
    let rec = Arc::new(Recorder::enabled());
    let mut md = MdGan::new(&spec, shards(WORKERS), c).with_telemetry(Arc::clone(&rec));
    for _ in 0..10 {
        md.step();
    }
    assert_eq!(rec.counter(Counter::WorkersSuspected), 1);
    assert_eq!(rec.counter(Counter::WorkersEvicted), 1);
    assert_eq!(md.membership().status(4), MemberStatus::Evicted);
    assert_eq!(md.membership().alive_count(), WORKERS - 1);
    assert!(md.gen_params().iter().all(|v| v.is_finite()));
}
