//! The threaded (one OS thread per node) and sequential runtimes must be
//! interchangeable: same seed, same shards, same config ⇒ bit-for-bit the
//! same generator and the same byte-level traffic.

use mdgan_repro::core::config::{GanHyper, KPolicy, MdGanConfig, SwapPolicy};
use mdgan_repro::core::mdgan::threaded::run_threaded;
use mdgan_repro::core::{ArchSpec, MdGan};
use mdgan_repro::data::synthetic::mnist_like;
use mdgan_repro::data::Dataset;
use mdgan_repro::simnet::{CrashSchedule, FaultPlan, Partition};
use mdgan_repro::tensor::rng::Rng64;

fn shards(workers: usize, seed: u64) -> Vec<Dataset> {
    let data = mnist_like(12, workers * 32, seed, 0.08);
    let mut rng = Rng64::seed_from_u64(seed);
    data.shard_iid(workers, &mut rng)
}

fn check_equivalence(cfg: MdGanConfig, iters: usize) {
    let spec = ArchSpec::mlp_mnist_scaled(12);
    let sh = shards(cfg.workers, 11);

    let threaded = run_threaded(&spec, sh.clone(), cfg.clone(), None, iters, 1_000_000);

    let mut seq = MdGan::new(&spec, sh, cfg);
    for _ in 0..iters {
        seq.step();
    }

    assert_eq!(
        threaded.gen_params,
        seq.gen_params(),
        "generator params diverged"
    );
    assert_eq!(
        threaded.traffic.class_bytes,
        seq.traffic().class_bytes,
        "traffic diverged"
    );
    assert_eq!(threaded.alive, seq.alive_workers(), "alive sets diverged");

    // Fault accounting must replay identically too (all zeros on a perfect
    // network, so this is free for the plain variants).
    let (t, s) = (&threaded.traffic, seq.traffic());
    assert_eq!(t.dropped_msgs, s.dropped_msgs, "dropped_msgs diverged");
    assert_eq!(t.dropped_bytes, s.dropped_bytes, "dropped_bytes diverged");
    assert_eq!(t.dup_msgs, s.dup_msgs, "dup_msgs diverged");
    assert_eq!(t.dup_bytes, s.dup_bytes, "dup_bytes diverged");
    assert_eq!(t.delayed_msgs, s.delayed_msgs, "delayed_msgs diverged");
    assert_eq!(t.retries, s.retries, "retries diverged");
}

/// Fault seed for the lossy variants; override with `FAULT_SEED=<n>` so CI
/// can sweep several fate streams without recompiling.
fn fault_seed() -> u64 {
    std::env::var("FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

fn base_cfg(workers: usize) -> MdGanConfig {
    MdGanConfig {
        workers,
        k: KPolicy::LogN,
        epochs_per_swap: 1.0,
        swap: SwapPolicy::Derangement,
        hyper: GanHyper {
            batch: 4,
            ..GanHyper::default()
        },
        iterations: 10,
        seed: 21,
        crash: CrashSchedule::none(),
        ..MdGanConfig::default()
    }
}

#[test]
fn equivalent_with_swaps() {
    // m = 32, b = 4 -> swap every 8 iterations; 17 iterations cross two swaps.
    check_equivalence(base_cfg(3), 17);
}

#[test]
fn equivalent_with_k_one() {
    let cfg = MdGanConfig {
        k: KPolicy::One,
        ..base_cfg(4)
    };
    check_equivalence(cfg, 9);
}

#[test]
fn equivalent_with_k_all() {
    let cfg = MdGanConfig {
        k: KPolicy::All,
        ..base_cfg(3)
    };
    check_equivalence(cfg, 9);
}

#[test]
fn equivalent_with_ring_swap() {
    let cfg = MdGanConfig {
        swap: SwapPolicy::Ring,
        ..base_cfg(4)
    };
    check_equivalence(cfg, 16);
}

#[test]
fn equivalent_under_crashes() {
    let cfg = MdGanConfig {
        crash: CrashSchedule::new(vec![(3, 2), (7, 1)]),
        ..base_cfg(4)
    };
    check_equivalence(cfg, 12);
}

#[test]
fn equivalent_single_worker() {
    let cfg = MdGanConfig {
        swap: SwapPolicy::Disabled,
        ..base_cfg(1)
    };
    check_equivalence(cfg, 6);
}

/// A non-trivial fault plan exercising every fate: drops, duplicates,
/// bounded delay, plus a node partition window.
fn faulty_cfg(workers: usize) -> MdGanConfig {
    let mut cfg = base_cfg(workers);
    cfg.fault = FaultPlan {
        seed: fault_seed(),
        drop: 0.15,
        duplicate: 0.1,
        delay: 0.1,
        max_delay_ticks: 2,
        partitions: vec![Partition::node(2, 4, 6)],
    };
    // Generous deadlines: timeouts are safety nets, not part of the fate
    // stream, so they must never fire on a healthy in-process run.
    cfg.robust.gather_timeout_ms = 5_000;
    cfg.robust.swap_timeout_ms = 2_000;
    cfg
}

#[test]
fn equivalent_under_lossy_network() {
    let cfg = faulty_cfg(4);
    check_equivalence(cfg, 12);
}

#[test]
fn equivalent_under_faults_and_crash() {
    let mut cfg = faulty_cfg(4);
    cfg.crash = CrashSchedule::new(vec![(5, 2)]);
    check_equivalence(cfg, 12);
}

#[test]
fn equivalent_pure_drop_heavy() {
    let mut cfg = base_cfg(3);
    cfg.fault = FaultPlan::lossy(fault_seed() ^ 0xD0D0, 0.35);
    cfg.robust.retries = 1;
    cfg.robust.gather_timeout_ms = 5_000;
    cfg.robust.swap_timeout_ms = 2_000;
    check_equivalence(cfg, 10);
}
