//! The threaded (one OS thread per node) and sequential runtimes must be
//! interchangeable: same seed, same shards, same config ⇒ bit-for-bit the
//! same generator and the same byte-level traffic.

use mdgan_repro::core::config::{GanHyper, KPolicy, MdGanConfig, SwapPolicy};
use mdgan_repro::core::mdgan::threaded::run_threaded;
use mdgan_repro::core::{ArchSpec, MdGan};
use mdgan_repro::data::synthetic::mnist_like;
use mdgan_repro::data::Dataset;
use mdgan_repro::simnet::CrashSchedule;
use mdgan_repro::tensor::rng::Rng64;

fn shards(workers: usize, seed: u64) -> Vec<Dataset> {
    let data = mnist_like(12, workers * 32, seed, 0.08);
    let mut rng = Rng64::seed_from_u64(seed);
    data.shard_iid(workers, &mut rng)
}

fn check_equivalence(cfg: MdGanConfig, iters: usize) {
    let spec = ArchSpec::mlp_mnist_scaled(12);
    let sh = shards(cfg.workers, 11);

    let threaded = run_threaded(&spec, sh.clone(), cfg.clone(), None, iters, 1_000_000);

    let mut seq = MdGan::new(&spec, sh, cfg);
    for _ in 0..iters {
        seq.step();
    }

    assert_eq!(
        threaded.gen_params,
        seq.gen_params(),
        "generator params diverged"
    );
    assert_eq!(
        threaded.traffic.class_bytes,
        seq.traffic().class_bytes,
        "traffic diverged"
    );
    assert_eq!(threaded.alive, seq.alive_workers(), "alive sets diverged");
}

fn base_cfg(workers: usize) -> MdGanConfig {
    MdGanConfig {
        workers,
        k: KPolicy::LogN,
        epochs_per_swap: 1.0,
        swap: SwapPolicy::Derangement,
        hyper: GanHyper {
            batch: 4,
            ..GanHyper::default()
        },
        iterations: 10,
        seed: 21,
        crash: CrashSchedule::none(),
    }
}

#[test]
fn equivalent_with_swaps() {
    // m = 32, b = 4 -> swap every 8 iterations; 17 iterations cross two swaps.
    check_equivalence(base_cfg(3), 17);
}

#[test]
fn equivalent_with_k_one() {
    let cfg = MdGanConfig {
        k: KPolicy::One,
        ..base_cfg(4)
    };
    check_equivalence(cfg, 9);
}

#[test]
fn equivalent_with_k_all() {
    let cfg = MdGanConfig {
        k: KPolicy::All,
        ..base_cfg(3)
    };
    check_equivalence(cfg, 9);
}

#[test]
fn equivalent_with_ring_swap() {
    let cfg = MdGanConfig {
        swap: SwapPolicy::Ring,
        ..base_cfg(4)
    };
    check_equivalence(cfg, 16);
}

#[test]
fn equivalent_under_crashes() {
    let cfg = MdGanConfig {
        crash: CrashSchedule::new(vec![(3, 2), (7, 1)]),
        ..base_cfg(4)
    };
    check_equivalence(cfg, 12);
}

#[test]
fn equivalent_single_worker() {
    let cfg = MdGanConfig {
        swap: SwapPolicy::Disabled,
        ..base_cfg(1)
    };
    check_equivalence(cfg, 6);
}
