//! The closed-form communication model (Table III, `mdgan_core::complexity`)
//! must match the byte-accurate simulator exactly — the measured traffic of
//! real training runs is the formula, not an approximation of it.

use mdgan_repro::core::complexity::{ModelSize, SysParams};
use mdgan_repro::core::config::{FlGanConfig, GanHyper, KPolicy, MdGanConfig, SwapPolicy};
use mdgan_repro::core::flgan::FlGan;
use mdgan_repro::core::{ArchSpec, MdGan};
use mdgan_repro::data::synthetic::mnist_like;
use mdgan_repro::simnet::LinkClass;
use mdgan_repro::tensor::rng::Rng64;

const IMG: usize = 12;
const WORKERS: usize = 4;
const B: usize = 5;
const SHARD: usize = 20; // m·E/b = 4 iterations per swap/round

fn sys_params(iters: usize) -> (SysParams, ArchSpec) {
    let spec = ArchSpec::mlp_mnist_scaled(IMG);
    let mut rng = Rng64::seed_from_u64(0);
    let model = ModelSize {
        gen: spec.build_generator(&mut rng).num_params(),
        disc: spec.build_discriminator(&mut rng).num_params(),
    };
    (
        SysParams {
            n: WORKERS,
            b: B,
            d: IMG * IMG,
            k: KPolicy::LogN.resolve(WORKERS),
            m: SHARD,
            e: 1.0,
            iters,
            model,
        },
        spec,
    )
}

#[test]
fn mdgan_measured_traffic_equals_formula() {
    let iters = 9; // crosses two swap boundaries (at 4 and 8)
    let (p, spec) = sys_params(iters);
    let data = mnist_like(IMG, WORKERS * SHARD, 3, 0.08);
    let mut rng = Rng64::seed_from_u64(3);
    let shards = data.shard_iid(WORKERS, &mut rng);
    let cfg = MdGanConfig {
        workers: WORKERS,
        k: KPolicy::LogN,
        epochs_per_swap: 1.0,
        swap: SwapPolicy::Derangement,
        hyper: GanHyper {
            batch: B,
            ..GanHyper::default()
        },
        iterations: iters,
        seed: 5,
        crash: Default::default(),
        ..MdGanConfig::default()
    };
    let mut md = MdGan::new(&spec, shards, cfg);
    for _ in 0..iters {
        md.step();
    }
    let r = md.traffic();

    // C→W: 2bdN per iteration.
    assert_eq!(
        r.bytes(LinkClass::ServerToWorker),
        p.mdgan_c2w_server_bytes() * iters as u64
    );
    // W→C: bdN per iteration.
    assert_eq!(
        r.bytes(LinkClass::WorkerToServer),
        p.mdgan_w2c_server_bytes() * iters as u64
    );
    // W→W: N messages of θ per swap round; 2 swap rounds happened.
    let swaps = (iters / md.swap_interval()) as u64;
    assert_eq!(swaps, 2);
    assert_eq!(
        r.bytes(LinkClass::WorkerToWorker),
        p.mdgan_w2w_bytes() * WORKERS as u64 * swaps
    );
    // Message counts: one batch message per worker per iteration, one
    // feedback back, N swap payloads per swap round.
    assert_eq!(r.msgs(LinkClass::ServerToWorker), (WORKERS * iters) as u64);
    assert_eq!(r.msgs(LinkClass::WorkerToServer), (WORKERS * iters) as u64);
    assert_eq!(r.msgs(LinkClass::WorkerToWorker), WORKERS as u64 * swaps);
}

#[test]
fn flgan_measured_traffic_equals_formula() {
    let iters = 8; // two rounds
    let (p, spec) = sys_params(iters);
    let data = mnist_like(IMG, WORKERS * SHARD, 4, 0.08);
    let mut rng = Rng64::seed_from_u64(4);
    let shards = data.shard_iid(WORKERS, &mut rng);
    let cfg = FlGanConfig {
        workers: WORKERS,
        epochs_per_round: 1.0,
        hyper: GanHyper {
            batch: B,
            ..GanHyper::default()
        },
        iterations: iters,
        seed: 6,
    };
    let mut fl = FlGan::new(&spec, shards, cfg);
    for _ in 0..iters {
        fl.step();
    }
    let r = fl.traffic();
    let rounds = (iters / fl.round_interval()) as u64;
    assert_eq!(rounds, 2);
    assert_eq!(
        r.bytes(LinkClass::ServerToWorker),
        p.flgan_c2w_server_bytes() * rounds
    );
    assert_eq!(
        r.bytes(LinkClass::WorkerToServer),
        p.flgan_c2w_server_bytes() * rounds
    );
    assert_eq!(r.bytes(LinkClass::WorkerToWorker), 0);
}

#[test]
fn traffic_conservation_holds_after_training() {
    let (_, spec) = sys_params(5);
    let data = mnist_like(IMG, WORKERS * SHARD, 5, 0.08);
    let mut rng = Rng64::seed_from_u64(5);
    let shards = data.shard_iid(WORKERS, &mut rng);
    let cfg = MdGanConfig {
        workers: WORKERS,
        k: KPolicy::One,
        epochs_per_swap: 1.0,
        swap: SwapPolicy::Ring,
        hyper: GanHyper {
            batch: B,
            ..GanHyper::default()
        },
        iterations: 5,
        seed: 6,
        crash: Default::default(),
        ..MdGanConfig::default()
    };
    let mut md = MdGan::new(&spec, shards, cfg);
    for _ in 0..5 {
        md.step();
    }
    let r = md.traffic();
    assert_eq!(r.ingress.iter().sum::<u64>(), r.egress.iter().sum::<u64>());
    assert_eq!(r.total_bytes(), r.ingress.iter().sum::<u64>());
}

#[test]
fn per_worker_ingress_matches_fig2_formula() {
    // One iteration without swap: worker ingress = 2bd floats exactly.
    let (p, spec) = sys_params(1);
    let data = mnist_like(IMG, WORKERS * SHARD, 6, 0.08);
    let mut rng = Rng64::seed_from_u64(6);
    let shards = data.shard_iid(WORKERS, &mut rng);
    let cfg = MdGanConfig {
        workers: WORKERS,
        k: KPolicy::One,
        epochs_per_swap: 100.0, // no swap in one iteration
        swap: SwapPolicy::Derangement,
        hyper: GanHyper {
            batch: B,
            ..GanHyper::default()
        },
        iterations: 1,
        seed: 7,
        crash: Default::default(),
        ..MdGanConfig::default()
    };
    let mut md = MdGan::new(&spec, shards, cfg);
    md.step();
    let r = md.traffic();
    assert_eq!(r.max_worker_ingress(), p.mdgan_worker_ingress(false));
    assert_eq!(r.server_ingress(), p.mdgan_server_ingress());
}
