//! Integration tests of the §VII extensions across crates.

use mdgan_repro::core::byzantine::{Aggregation, Attack};
use mdgan_repro::core::checkpoint::Checkpoint;
use mdgan_repro::core::compression::Codec;
use mdgan_repro::core::config::{FlGanConfig, GanHyper, KPolicy, MdGanConfig, SwapPolicy};
use mdgan_repro::core::gossip::GossipGan;
use mdgan_repro::core::mdgan::asynchronous::{AsyncConfig, AsyncMdGan};
use mdgan_repro::core::{ArchSpec, Evaluator, MdGan};
use mdgan_repro::data::synthetic::mnist_like;
use mdgan_repro::data::Dataset;
use mdgan_repro::tensor::rng::Rng64;

const IMG: usize = 12;
const WORKERS: usize = 4;

fn shards(seed: u64) -> (Dataset, Vec<Dataset>) {
    let data = mnist_like(IMG, 1024 + 256, 42, 0.08);
    let (train, _) = data.split_test(256);
    let mut rng = Rng64::seed_from_u64(seed);
    let sh = train.shard_iid(WORKERS, &mut rng);
    (train, sh)
}

fn cfg(iters: usize) -> MdGanConfig {
    MdGanConfig {
        workers: WORKERS,
        k: KPolicy::LogN,
        epochs_per_swap: 1.0,
        swap: SwapPolicy::Derangement,
        hyper: GanHyper {
            batch: 16,
            ..GanHyper::default()
        },
        iterations: iters,
        seed: 3,
        crash: Default::default(),
        ..MdGanConfig::default()
    }
}

#[test]
fn async_mdgan_learns() {
    let data = mnist_like(IMG, 1024 + 256, 42, 0.08);
    let (train, test) = data.split_test(256);
    let mut evaluator = Evaluator::new(&train, &test, 128, 42);
    let mut rng = Rng64::seed_from_u64(2);
    let sh = train.shard_iid(WORKERS, &mut rng);
    let spec = ArchSpec::mlp_mnist_scaled(IMG);
    let mut amd = AsyncMdGan::new(&spec, sh, cfg(300), AsyncConfig::default());
    // 300 synchronous iterations' worth of feedback events.
    let timeline = amd.train(300 * WORKERS, 100 * WORKERS, Some(&mut evaluator));
    let first = timeline.points().first().unwrap().1;
    let best = timeline.best_fid().unwrap();
    assert!(
        best < 0.7 * first.fid,
        "async MD-GAN did not learn: {} -> {best}",
        first.fid
    );
    assert!(amd.async_stats().updates == 300 * WORKERS as u64);
}

#[test]
fn compressed_training_learns_with_a_fraction_of_the_traffic() {
    let data = mnist_like(IMG, 1024 + 256, 42, 0.08);
    let (train, test) = data.split_test(256);
    let mut evaluator = Evaluator::new(&train, &test, 128, 42);
    let mut rng = Rng64::seed_from_u64(4);
    let sh = train.shard_iid(WORKERS, &mut rng);
    let spec = ArchSpec::mlp_mnist_scaled(IMG);

    let mut plain = MdGan::new(&spec, sh.clone(), cfg(300));
    let plain_t = plain.train(300, 100, Some(&mut evaluator));

    let mut coded = MdGan::new(&spec, sh, cfg(300))
        .with_codecs(Codec::Quantize8, Codec::TopKQuantize8 { frac: 0.25 });
    let coded_t = coded.train(300, 100, Some(&mut evaluator));

    // Traffic shrinks by > 2.5x overall.
    // (swap messages stay uncompressed, so the overall ratio is below the
    // per-message ~4x)
    let ratio = plain.traffic().total_bytes() as f64 / coded.traffic().total_bytes() as f64;
    assert!(ratio > 2.0, "compression ratio only {ratio}");

    // Both learn (FID drops markedly from the untrained start).
    for (name, t) in [("plain", &plain_t), ("coded", &coded_t)] {
        let first = t.points().first().unwrap().1.fid;
        let best = t.best_fid().unwrap();
        assert!(
            best < 0.75 * first,
            "{name} run did not learn ({first} -> {best})"
        );
    }
}

#[test]
fn byzantine_minority_with_median_still_learns() {
    let data = mnist_like(IMG, 1024 + 256, 42, 0.08);
    let (train, test) = data.split_test(256);
    let mut evaluator = Evaluator::new(&train, &test, 128, 42);
    let mut rng = Rng64::seed_from_u64(5);
    let sh = train.shard_iid(WORKERS, &mut rng);
    let spec = ArchSpec::mlp_mnist_scaled(IMG);
    let mut attacks = vec![Attack::None; WORKERS];
    attacks[0] = Attack::SignFlip { scale: 10.0 };
    // k = 1 so all four feedbacks share one batch group — the coordinate
    // median then tolerates the single attacker (with k = log N the groups
    // have size 2, where a median cannot out-vote anyone).
    let mut byz_cfg = cfg(300);
    byz_cfg.k = KPolicy::One;
    let mut md = MdGan::new(&spec, sh, byz_cfg)
        .with_attacks(attacks)
        .with_aggregation(Aggregation::CoordinateMedian);
    let t = md.train(300, 100, Some(&mut evaluator));
    let first = t.points().first().unwrap().1.fid;
    let best = t.best_fid().unwrap();
    assert!(
        best < 0.8 * first,
        "defended run did not learn ({first} -> {best})"
    );
    assert!(md.gen_params().iter().all(|v| v.is_finite()));
}

#[test]
fn non_iid_shards_train_end_to_end() {
    let data = mnist_like(IMG, 1024 + 256, 42, 0.08);
    let (train, _) = data.split_test(256);
    let mut rng = Rng64::seed_from_u64(6);
    let sh = train.shard_label_skew(WORKERS, 1.0, &mut rng);
    let spec = ArchSpec::mlp_mnist_scaled(IMG);
    let mut md = MdGan::new(&spec, sh, cfg(50));
    for _ in 0..50 {
        md.step();
    }
    assert!(md.gen_params().iter().all(|v| v.is_finite()));
    // The swap is what lets discriminators see other label regions.
    assert!(md.swaps() > 0);
}

#[test]
fn gossip_gan_runs_and_mixes() {
    let (_, sh) = shards(7);
    let spec = ArchSpec::mlp_mnist_scaled(IMG);
    let fl_cfg = FlGanConfig {
        workers: WORKERS,
        epochs_per_round: 1.0,
        hyper: GanHyper {
            batch: 16,
            ..GanHyper::default()
        },
        iterations: 40,
        seed: 8,
    };
    let mut gg = GossipGan::new(&spec, sh, fl_cfg);
    let interval = gg.round_interval();
    for _ in 0..interval * 2 {
        gg.step();
    }
    assert_eq!(gg.exchanges(), 2 * WORKERS as u64);
    assert!(gg
        .observer_generator()
        .net
        .get_params_flat()
        .iter()
        .all(|v| v.is_finite()));
    // Decentralized: zero server traffic.
    let r = gg.traffic();
    assert_eq!(r.server_ingress(), 0);
    assert!(r.bytes(mdgan_repro::simnet::LinkClass::WorkerToWorker) > 0);
}

#[test]
fn checkpoint_survives_disk_roundtrip_mid_training() {
    let (_, sh) = shards(9);
    let spec = ArchSpec::mlp_mnist_scaled(IMG);
    let mut md = MdGan::new(&spec, sh, cfg(20));
    for _ in 0..10 {
        md.step();
    }
    let ck = md.checkpoint();
    let path = std::env::temp_dir().join("mdgan_integration.ckpt");
    ck.save(&path).unwrap();
    let loaded = Checkpoint::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded, ck);
    for _ in 0..5 {
        md.step();
    }
    md.restore(&loaded).unwrap();
    assert_eq!(md.iterations(), 10);
    assert_eq!(md.gen_params().as_slice(), ck.get("generator").unwrap());
}
