//! Acceptance tests for the lossy-network fault model (ISSUE 3): a
//! 10-worker MD-GAN run at 5% message drop with a mid-run crash must finish
//! without deadlock or panic, the server's quorum gather must release within
//! its deadline, fault counters must land in the telemetry JSONL, and the
//! same seed must reproduce bitwise-identical results across the sequential
//! and threaded runtimes.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mdgan_repro::core::config::{GanHyper, KPolicy, MdGanConfig, SwapPolicy};
use mdgan_repro::core::mdgan::threaded::run_threaded_with;
use mdgan_repro::core::{ArchSpec, MdGan};
use mdgan_repro::data::synthetic::mnist_like;
use mdgan_repro::data::Dataset;
use mdgan_repro::simnet::{CrashSchedule, FaultPlan, Partition};
use mdgan_repro::telemetry::{Counter, Event, Recorder, RunRecord};

const IMG: usize = 12;

fn shards(workers: usize, seed: u64) -> Vec<Dataset> {
    let data = mnist_like(IMG, workers * 32, seed, 0.08);
    let mut rng = mdgan_repro::tensor::rng::Rng64::seed_from_u64(seed);
    data.shard_iid(workers, &mut rng)
}

fn lossy_cfg(workers: usize, iters: usize, drop: f32, seed: u64) -> MdGanConfig {
    let mut cfg = MdGanConfig {
        workers,
        k: KPolicy::LogN,
        epochs_per_swap: 1.0,
        swap: SwapPolicy::Derangement,
        hyper: GanHyper {
            batch: 4,
            ..GanHyper::default()
        },
        iterations: iters,
        seed,
        crash: CrashSchedule::none(),
        ..MdGanConfig::default()
    };
    cfg.fault = FaultPlan::lossy(seed ^ 0xFA17, drop);
    // Deadlines are safety nets sized far above in-process compute so they
    // never truncate a healthy gather (which would break determinism).
    cfg.robust.gather_timeout_ms = 10_000;
    cfg.robust.swap_timeout_ms = 4_000;
    cfg
}

/// The headline acceptance run: 10 workers, 5% drop, one silent mid-run
/// crash. Completes, suspects the crashed worker, counts faults, and the
/// sequential and threaded runtimes agree bit for bit.
#[test]
fn ten_workers_five_pct_drop_and_crash_complete_identically() {
    let workers = 10;
    let iters = 10;
    let mut cfg = lossy_cfg(workers, iters, 0.05, 33);
    cfg.crash = CrashSchedule::new(vec![(5, 3)]);
    cfg.robust.suspect_after = 2;
    cfg.robust.probe_period = 0; // keep the crashed worker suspected

    let spec = ArchSpec::mlp_mnist_scaled(IMG);
    let sh = shards(workers, 17);

    let threaded_rec = Arc::new(Recorder::enabled());
    let threaded = run_threaded_with(
        &spec,
        sh.clone(),
        cfg.clone(),
        None,
        iters,
        1_000_000,
        Arc::clone(&threaded_rec),
    );

    let seq_rec = Arc::new(Recorder::enabled());
    let mut seq = MdGan::new(&spec, sh, cfg).with_telemetry(Arc::clone(&seq_rec));
    for _ in 0..iters {
        seq.step();
    }

    assert_eq!(
        threaded.gen_params,
        seq.gen_params(),
        "sequential and threaded diverged under faults"
    );
    assert_eq!(threaded.traffic.class_bytes, seq.traffic().class_bytes);
    assert_eq!(threaded.traffic.dropped_bytes, seq.traffic().dropped_bytes);
    assert_eq!(threaded.traffic.retries, seq.traffic().retries);

    for rec in [&threaded_rec, &seq_rec] {
        assert!(rec.counter(Counter::MsgsDropped) > 0, "no drops counted");
        assert!(rec.counter(Counter::Retries) > 0, "no retries counted");
        assert!(
            rec.counter(Counter::WorkersSuspected) >= 1,
            "crashed worker never suspected"
        );
    }

    // The counters and the suspicion event must surface in the exported
    // telemetry JSONL — that is how fig5-style runs report degradation.
    let jsonl = RunRecord::new("fault_acceptance").to_jsonl(&threaded_rec);
    for needle in [
        "\"msgs_dropped\":",
        "\"retries\":",
        "\"workers_suspected\":",
        "\"type\":\"worker_suspected\"",
    ] {
        assert!(jsonl.contains(needle), "telemetry JSONL missing {needle}");
    }
}

/// With every data message dropped and zero retries, the quorum gather must
/// release at its deadline each iteration instead of hanging — so the whole
/// run is bounded by roughly iters × (gather + swap deadline).
#[test]
fn quorum_gather_releases_within_deadline() {
    let iters = 4;
    let mut cfg = lossy_cfg(3, iters, 1.0, 5);
    cfg.robust.retries = 0;
    cfg.robust.gather_timeout_ms = 250;
    cfg.robust.swap_timeout_ms = 100;

    let spec = ArchSpec::mlp_mnist_scaled(IMG);
    let start = Instant::now();
    let out = run_threaded_with(
        &spec,
        shards(3, 9),
        cfg,
        None,
        iters,
        1_000_000,
        Arc::new(Recorder::disabled()),
    );
    let elapsed = start.elapsed();

    assert!(
        elapsed < Duration::from_secs(8),
        "gather blocked past its deadline: {elapsed:?}"
    );
    assert!(out.traffic.dropped_msgs > 0);
    assert_eq!(out.traffic.bytes_delivered(), 0);
}

/// A worker cut off by a temporary partition is suspected while unreachable
/// and rejoins via probing once the partition heals.
#[test]
fn partitioned_worker_is_suspected_then_rejoins() {
    let iters = 9;
    let mut cfg = lossy_cfg(3, iters, 0.0, 13);
    cfg.fault = FaultPlan {
        seed: 99,
        partitions: vec![Partition::node(2, 2, 6)],
        ..FaultPlan::default()
    };
    cfg.robust.suspect_after = 2;
    cfg.robust.probe_period = 1; // probe suspects every iteration

    let spec = ArchSpec::mlp_mnist_scaled(IMG);
    let rec = Arc::new(Recorder::enabled());
    let mut seq = MdGan::new(&spec, shards(3, 4), cfg).with_telemetry(Arc::clone(&rec));
    for _ in 0..iters {
        seq.step();
    }

    let events: Vec<Event> = rec.events().into_iter().map(|t| t.event).collect();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, Event::WorkerSuspected { worker: 2, .. })),
        "partitioned worker (node 2) never suspected: {events:?}"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, Event::WorkerRejoined { worker: 2, .. })),
        "healed worker (node 2) never rejoined: {events:?}"
    );
    // After rejoin the worker is a swap candidate again and feedback flows.
    assert_eq!(seq.alive_workers(), vec![1, 2, 3]);
}
