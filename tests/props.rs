//! Property-based tests (proptest) over cross-crate invariants.

use mdgan_repro::data::Dataset;
use mdgan_repro::nn::init::Init;
use mdgan_repro::nn::layer::Layer;
use mdgan_repro::nn::layers::{Dense, LeakyRelu, Sequential};
use mdgan_repro::nn::param::{average, l2_distance, weighted_average};
use mdgan_repro::simnet::{FaultPlan, Partition, Router, TrafficStats};
use mdgan_repro::tensor::ops::conv::{conv2d_forward, conv_out_dim, conv_transpose2d_forward};
use mdgan_repro::tensor::rng::Rng64;
use mdgan_repro::tensor::{Shape, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Broadcasting is commutative in the result shape.
    #[test]
    fn broadcast_shape_commutes(a in proptest::collection::vec(1usize..4, 0..4),
                                b in proptest::collection::vec(1usize..4, 0..4)) {
        let sa = Shape::new(&a);
        let sb = Shape::new(&b);
        prop_assert_eq!(Shape::broadcast(&sa, &sb), Shape::broadcast(&sb, &sa));
    }

    /// add/mul with broadcasting agree with scalar loops on same shapes.
    #[test]
    fn elementwise_ops_match_scalar_math(seed in 0u64..1000, n in 1usize..32) {
        let mut rng = Rng64::seed_from_u64(seed);
        let a = Tensor::randn(&[n], &mut rng);
        let b = Tensor::randn(&[n], &mut rng);
        let sum = a.add(&b);
        let prod = a.mul(&b);
        for i in 0..n {
            prop_assert!((sum.data()[i] - (a.data()[i] + b.data()[i])).abs() < 1e-6);
            prop_assert!((prod.data()[i] - (a.data()[i] * b.data()[i])).abs() < 1e-6);
        }
    }

    /// matmul distributes over addition: A(B + C) = AB + AC.
    #[test]
    fn matmul_distributes(seed in 0u64..1000, m in 1usize..6, k in 1usize..6, n in 1usize..6) {
        let mut rng = Rng64::seed_from_u64(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let c = Tensor::randn(&[k, n], &mut rng);
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// <conv(x), y> == <x, conv_t(y)> for any valid geometry whose spatial
    /// dims round-trip (the adjoint identity behind MD-GAN's feedback path).
    #[test]
    fn conv_and_transpose_are_adjoint(seed in 0u64..500,
                                      c in 1usize..3,
                                      o in 1usize..3,
                                      s in 1usize..3,
                                      k_extra in 0usize..2) {
        let k = s + k_extra + 1; // kernel >= stride + 1 keeps geometry sane
        let p = 1usize.min(k - 1);
        // Choose h so that (h + 2p - k) divides s exactly.
        let base = 5usize;
        let h = base * s + k - 2 * p;
        let mut rng = Rng64::seed_from_u64(seed);
        let x = Tensor::randn(&[1, c, h, h], &mut rng);
        let oh = conv_out_dim(h, k, s, p);
        let y = Tensor::randn(&[1, o, oh, oh], &mut rng);
        let w = Tensor::randn(&[o, c, k, k], &mut rng);
        let none = Tensor::zeros(&[0]);
        let cx = conv2d_forward(&x, &w, &none, s, p);
        let cty = conv_transpose2d_forward(&y, &w, &none, s, p);
        prop_assert_eq!(cty.shape(), x.shape());
        let lhs = cx.dot(&y) as f64;
        let rhs = x.dot(&cty) as f64;
        prop_assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0), "{} vs {}", lhs, rhs);
    }

    /// Flat-parameter roundtrip for random MLP architectures.
    #[test]
    fn param_flat_roundtrip(seed in 0u64..1000,
                            dims in proptest::collection::vec(1usize..12, 2..5)) {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut net = Sequential::new();
        for w in dims.windows(2) {
            net.push_boxed(Box::new(Dense::new(w[0], w[1], Init::XavierUniform, &mut rng)));
            net.push_boxed(Box::new(LeakyRelu::new(0.2)));
        }
        let flat = net.get_params_flat();
        prop_assert_eq!(flat.len(), net.num_params());
        let mut rng2 = Rng64::seed_from_u64(seed ^ 0xFFFF);
        let mut net2 = Sequential::new();
        for w in dims.windows(2) {
            net2.push_boxed(Box::new(Dense::new(w[0], w[1], Init::XavierUniform, &mut rng2)));
            net2.push_boxed(Box::new(LeakyRelu::new(0.2)));
        }
        net2.set_params_flat(&flat);
        prop_assert_eq!(net2.get_params_flat(), flat);
    }

    /// FedAvg is idempotent on identical inputs, bounded by min/max, and
    /// equals weighted average with equal weights.
    #[test]
    fn fedavg_properties(seed in 0u64..1000, n in 1usize..6, len in 1usize..64) {
        let mut rng = Rng64::seed_from_u64(seed);
        let vecs: Vec<Vec<f32>> = (0..n).map(|_| (0..len).map(|_| rng.normal()).collect()).collect();
        let avg = average(&vecs);
        let weights = vec![1.0f32; n];
        let wavg = weighted_average(&vecs, &weights);
        prop_assert!(l2_distance(&avg, &wavg) < 1e-4);
        for i in 0..len {
            let mn = vecs.iter().map(|v| v[i]).fold(f32::INFINITY, f32::min);
            let mx = vecs.iter().map(|v| v[i]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(avg[i] >= mn - 1e-5 && avg[i] <= mx + 1e-5);
        }
        // Idempotence.
        let again = average(std::slice::from_ref(&avg));
        prop_assert!(l2_distance(&again, &avg) < 1e-7);
    }

    /// SPLIT conservation under elastic membership: over any alive view,
    /// the rebalanced assignment stays in `0..k`, spreads workers across
    /// the k generated batches as evenly as possible (max/min load differ
    /// by at most one, every batch covered once the view is k wide), and
    /// reduces to the paper's fixed formula on the full `0..n` view.
    #[test]
    fn split_rebalance_conserves_batches(alive_bits in proptest::collection::vec(0usize..2, 1..24),
                                         k_raw in 0usize..8) {
        use mdgan_repro::core::mdgan::server::MdServer;
        let mut alive: Vec<usize> = alive_bits
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| (a == 1).then_some(i))
            .collect();
        if alive.is_empty() {
            alive.push(0);
        }
        let n = alive.len();
        let k = 1 + k_raw % n;

        let mut g_load = vec![0usize; k];
        for (pos, &slot) in alive.iter().enumerate() {
            let (g, d) = MdServer::assign_in_view(&alive, slot, k)
                .expect("alive slot must be assigned");
            prop_assert!(g < k && d < k, "assignment out of range");
            prop_assert_eq!((g, d), MdServer::assign(pos, k), "not position-based");
            g_load[g] += 1;
        }
        // Dead slots get nothing.
        for slot in 0..alive_bits.len() {
            if !alive.contains(&slot) {
                prop_assert_eq!(MdServer::assign_in_view(&alive, slot, k), None);
            }
        }
        // Conservation: every generated batch is consumed (n >= k always
        // holds here), and the load is balanced to within one worker.
        let (mn, mx) = (g_load.iter().min().unwrap(), g_load.iter().max().unwrap());
        prop_assert!(*mn >= 1, "batch starved: {:?}", g_load);
        prop_assert!(mx - mn <= 1, "unbalanced: {:?}", g_load);
        prop_assert_eq!(g_load.iter().sum::<usize>(), n);

        // Full-view reduction: with everyone alive the elastic formula is
        // the fixed-membership one, slot for slot.
        let full: Vec<usize> = (0..n).collect();
        for slot in 0..n {
            prop_assert_eq!(
                MdServer::assign_in_view(&full, slot, k),
                Some(MdServer::assign(slot, k))
            );
        }
    }

    /// Derangements of any size n >= 2 are fixed-point-free permutations.
    #[test]
    fn derangement_property(seed in 0u64..2000, n in 2usize..40) {
        let mut rng = Rng64::seed_from_u64(seed);
        let d = rng.derangement(n);
        let mut sorted = d.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        prop_assert!(d.iter().enumerate().all(|(i, &x)| i != x));
    }

    /// Traffic conservation under arbitrary message sequences.
    #[test]
    fn traffic_conservation(msgs in proptest::collection::vec((0usize..5, 0usize..5, 1u64..10_000), 0..64)) {
        let stats = TrafficStats::new(5);
        let mut sent = 0u64;
        for (f, t, b) in msgs {
            if f != t {
                stats.record(f, t, b);
                sent += b;
            }
        }
        let r = stats.report();
        prop_assert_eq!(r.ingress.iter().sum::<u64>(), sent);
        prop_assert_eq!(r.egress.iter().sum::<u64>(), sent);
        prop_assert_eq!(r.total_bytes(), sent);
    }

    /// i.i.d. sharding partitions the dataset: shard sizes are equal and
    /// every shard's labels stay within range.
    #[test]
    fn sharding_partitions(seed in 0u64..1000, workers in 1usize..6) {
        let n = workers * 10;
        let images = Tensor::zeros(&[n, 1, 2, 2]);
        let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let data = Dataset::new(images, labels, 3);
        let mut rng = Rng64::seed_from_u64(seed);
        let shards = data.shard_iid(workers, &mut rng);
        prop_assert_eq!(shards.len(), workers);
        let total: usize = shards.iter().map(|s| s.len()).sum();
        prop_assert_eq!(total, n);
        for s in &shards {
            prop_assert_eq!(s.len(), 10);
            prop_assert!(s.labels().iter().all(|&l| l < 3));
        }
    }

    /// Softmax rows are probability distributions for arbitrary logits.
    #[test]
    fn softmax_is_distribution(seed in 0u64..1000, b in 1usize..8, c in 1usize..8, scale in 0.1f32..50.0) {
        let mut rng = Rng64::seed_from_u64(seed);
        let logits = Tensor::randn(&[b, c], &mut rng).scale(scale);
        let probs = logits.softmax_rows();
        prop_assert!(probs.all_finite());
        for i in 0..b {
            let s: f32 = probs.row(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(probs.row(i).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Byte conservation under any seeded fault plan: every byte sent is
    /// either delivered or dropped (duplicates accounted separately), and
    /// the receiver sees exactly the delivered messages (plus duplicates).
    #[test]
    fn fault_plan_conserves_bytes(seed in 0u64..10_000,
                                  drop in 0.0f32..1.0,
                                  duplicate in 0.0f32..0.5,
                                  delay in 0.0f32..0.5,
                                  retries in 0u32..4,
                                  msgs in 1usize..40,
                                  partition in 0usize..2) {
        let mut plan = FaultPlan {
            seed,
            drop,
            duplicate,
            delay,
            max_delay_ticks: 2,
            partitions: vec![],
        };
        if partition == 1 {
            plan.partitions.push(Partition::node(2, 3, 9));
        }
        let mut router: Router<u64> = Router::new(2).with_faults(plan);
        let eps = router.all_endpoints();

        let mut delivered = 0u64;
        let mut dup_copies = 0u64;
        for m in 0..msgs {
            let to = 1 + (m % 2);
            let bytes = 64 + m as u64;
            let d = eps[0].send_data(to, m as u64, bytes, m as u64, retries);
            if d.delivered {
                delivered += 1;
            }
            if d.duplicated {
                dup_copies += 1;
            }
        }

        let r = router.stats().report();
        prop_assert_eq!(r.bytes_sent(), r.bytes_delivered() + r.dropped_bytes,
                        "sent != delivered + dropped");
        // Duplicated bytes ride on top of (not inside) the conserved flow.
        prop_assert!(r.dup_bytes <= r.bytes_delivered());
        prop_assert_eq!(r.dup_msgs, dup_copies);
        prop_assert!(r.retries <= msgs as u64 * retries as u64);

        // The receivers observe exactly the delivered payloads; duplicate
        // copies are flagged and skipped by `recv`-family methods, so they
        // surface only through `try_recv_raw`-free accounting here.
        let mut seen = 0u64;
        for ep in &eps[1..] {
            while ep.try_recv().is_some() {
                seen += 1;
            }
        }
        prop_assert_eq!(seen, delivered);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Checkpoint v2 serialization round-trips to the identity: parameters,
    /// optimizer moments (f32), RNG stream positions (u64) and raw bytes
    /// come back bit-for-bit, in order, under any section mix.
    #[test]
    fn checkpoint_v2_roundtrip_is_identity(seed in 0u64..1000,
                                           iter in 0u64..u64::MAX,
                                           n_params in 0usize..64,
                                           n_blob in 0usize..64) {
        use mdgan_repro::core::checkpoint::Checkpoint;
        let mut rng = Rng64::seed_from_u64(seed);
        let params: Vec<f32> = (0..n_params).map(|_| rng.normal()).collect();
        let moments: Vec<f32> = (0..n_params).map(|_| rng.normal()).collect();
        let blob: Vec<u8> = (0..n_blob).map(|i| (seed as u8).wrapping_add(i as u8)).collect();

        let mut ck = Checkpoint::new(iter);
        ck.push("generator", params.clone());
        ck.push("opt_g_m", moments.clone());
        ck.push_u64("rng_server", rng.state_words().to_vec());
        ck.push_bytes("timeline", blob.clone());

        let back = Checkpoint::from_bytes(&ck.to_bytes()).unwrap();
        prop_assert_eq!(back.iteration, iter);
        prop_assert_eq!(back.num_sections(), 4);
        prop_assert_eq!(back.get("generator").unwrap(), &params[..]);
        prop_assert_eq!(back.get("opt_g_m").unwrap(), &moments[..]);
        prop_assert_eq!(back.get_u64("rng_server").unwrap(), &rng.state_words()[..]);
        prop_assert_eq!(back.get_bytes("timeline").unwrap(), &blob[..]);
        prop_assert_eq!(&back, &ck);
    }

    /// Flipping any single bit of a serialized v2 checkpoint is detected:
    /// magic/version flips fail their equality checks, and every other byte
    /// (header fields included) is covered by a CRC32.
    #[test]
    fn checkpoint_v2_detects_every_single_bit_flip(seed in 0u64..200, flip in 0usize..10_000) {
        use mdgan_repro::core::checkpoint::Checkpoint;
        let mut rng = Rng64::seed_from_u64(seed);
        let mut ck = Checkpoint::new(seed.wrapping_mul(977));
        ck.push("generator", (0..9).map(|_| rng.normal()).collect());
        ck.push_u64("rng_server", rng.state_words().to_vec());
        ck.push_bytes("note", vec![7u8; 5]);

        let mut bytes = ck.to_bytes().to_vec();
        let bit = flip % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            Checkpoint::from_bytes(&bytes).is_err(),
            "bit {} (byte {}) flipped undetected", bit, bit / 8
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The robust aggregators are permutation-invariant: reordering the
    /// group never changes a single output bit (both sort each coordinate
    /// column before reducing it).
    #[test]
    fn robust_aggregators_are_permutation_invariant(seed in 0u64..1000,
                                                    n in 3usize..8,
                                                    len in 1usize..48,
                                                    rot in 1usize..8) {
        use mdgan_repro::core::byzantine::Aggregation;
        let mut rng = Rng64::seed_from_u64(seed);
        let group: Vec<Tensor> = (0..n).map(|_| Tensor::randn(&[len], &mut rng)).collect();
        let mut permuted: Vec<&Tensor> = group.iter().collect();
        permuted.rotate_left(rot % n);
        permuted.reverse();
        let original: Vec<&Tensor> = group.iter().collect();
        for agg in [Aggregation::CoordinateMedian, Aggregation::TrimmedMean { trim: 1 }] {
            prop_assert_eq!(
                agg.aggregate(&original).data(),
                agg.aggregate(&permuted).data(),
                "{:?} depends on group order", agg
            );
        }
    }

    /// Translation equivariance: shifting every member by a constant
    /// shifts the aggregate by the same constant.
    #[test]
    fn robust_aggregators_are_translation_equivariant(seed in 0u64..1000,
                                                      n in 3usize..8,
                                                      len in 1usize..48,
                                                      shift in -4.0f32..4.0) {
        use mdgan_repro::core::byzantine::Aggregation;
        let mut rng = Rng64::seed_from_u64(seed);
        let group: Vec<Tensor> = (0..n).map(|_| Tensor::randn(&[len], &mut rng)).collect();
        let shifted: Vec<Tensor> = group.iter().map(|t| t.add_scalar(shift)).collect();
        for agg in [Aggregation::CoordinateMedian, Aggregation::TrimmedMean { trim: 1 }] {
            let base = agg.aggregate(&group.iter().collect::<Vec<_>>());
            let moved = agg.aggregate(&shifted.iter().collect::<Vec<_>>());
            for (b, m) in base.data().iter().zip(moved.data()) {
                prop_assert!(
                    (b + shift - m).abs() < 1e-4,
                    "{:?}: {} + {} vs {}", agg, b, shift, m
                );
            }
        }
    }

    /// Single-outlier bounded deviation: one arbitrarily hostile member
    /// (any magnitude, sign, even NaN/Inf) cannot push a robust aggregate
    /// outside the honest members' per-coordinate envelope.
    #[test]
    fn robust_aggregators_bound_a_single_outlier(seed in 0u64..1000,
                                                 n in 3usize..8,
                                                 len in 1usize..48,
                                                 magnitude in 1.0f32..1e30,
                                                 hostile in 0usize..4) {
        use mdgan_repro::core::byzantine::Aggregation;
        let mut rng = Rng64::seed_from_u64(seed);
        let honest: Vec<Tensor> = (0..n).map(|_| Tensor::randn(&[len], &mut rng)).collect();
        let outlier = match hostile {
            0 => Tensor::randn(&[len], &mut rng).scale(magnitude),
            1 => Tensor::randn(&[len], &mut rng).scale(-magnitude),
            2 => Tensor::new(&[len], vec![f32::NAN; len]),
            _ => Tensor::new(&[len], vec![f32::INFINITY; len]),
        };
        let mut group: Vec<&Tensor> = honest.iter().collect();
        group.push(&outlier);
        for agg in [Aggregation::CoordinateMedian, Aggregation::TrimmedMean { trim: 1 }] {
            let out = agg.aggregate(&group);
            for i in 0..len {
                let lo = honest.iter().map(|t| t.data()[i]).fold(f32::INFINITY, f32::min);
                let hi = honest.iter().map(|t| t.data()[i]).fold(f32::NEG_INFINITY, f32::max);
                let v = out.data()[i];
                prop_assert!(
                    v.is_finite() && v >= lo && v <= hi,
                    "{:?} coord {}: {} escapes honest envelope [{}, {}]", agg, i, v, lo, hi
                );
            }
        }
    }
}
