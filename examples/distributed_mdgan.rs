//! The paper's headline scenario: a dataset spread over 10 workers that
//! never share their data, trained with MD-GAN — a single generator on the
//! server, one discriminator per worker, gossip swaps every epoch.
//!
//! Prints score progress and the full traffic accounting (the quantities
//! of Table III).
//!
//! ```text
//! cargo run --release --example distributed_mdgan
//! ```

use mdgan_repro::core::config::{GanHyper, KPolicy, MdGanConfig, SwapPolicy};
use mdgan_repro::core::{ArchSpec, Evaluator, MdGan};
use mdgan_repro::data::synthetic::mnist_like;
use mdgan_repro::simnet::LinkClass;
use mdgan_repro::tensor::rng::Rng64;

fn main() {
    let workers = 10usize;
    let img = 16usize;
    println!("generating data and sharding i.i.d. over {workers} workers...");
    let data = mnist_like(img, 2048 + 512, 42, 0.08);
    let (train, test) = data.split_test(512);
    let mut rng = Rng64::seed_from_u64(1);
    let shards = train.shard_iid(workers, &mut rng);
    println!(
        "each worker holds m = {} local images (they never leave the worker)",
        shards[0].len()
    );

    let mut evaluator = Evaluator::new(&train, &test, 256, 42);
    let spec = ArchSpec::mlp_mnist_scaled(img);
    let cfg = MdGanConfig {
        workers,
        k: KPolicy::LogN,
        epochs_per_swap: 1.0,
        swap: SwapPolicy::Derangement,
        hyper: GanHyper {
            batch: 10,
            ..GanHyper::default()
        },
        iterations: 400,
        seed: 7,
        crash: Default::default(),
        ..MdGanConfig::default()
    };
    let mut md = MdGan::new(&spec, shards, cfg);
    println!(
        "MD-GAN: k = {} generated batches/iteration, swap every {} iterations",
        md.k(),
        md.swap_interval()
    );

    let timeline = md.train(400, 50, Some(&mut evaluator));
    println!("\n   iter |    MS ↑ |   FID ↓");
    for (it, s) in timeline.points() {
        println!("  {it:5} | {:7.3} | {:7.2}", s.inception_score, s.fid);
    }

    let t = md.traffic();
    println!(
        "\ntraffic after {} iterations and {} swaps:",
        md.iterations(),
        md.swaps()
    );
    let mb = |b: u64| b as f64 / (1024.0 * 1024.0);
    println!(
        "  server→workers : {:8.2} MB in {} messages (2bd per worker per iteration)",
        mb(t.bytes(LinkClass::ServerToWorker)),
        t.msgs(LinkClass::ServerToWorker)
    );
    println!(
        "  workers→server : {:8.2} MB in {} messages (the bd feedbacks F_n)",
        mb(t.bytes(LinkClass::WorkerToServer)),
        t.msgs(LinkClass::WorkerToServer)
    );
    println!(
        "  worker↔worker  : {:8.2} MB in {} messages (θ per swap hop)",
        mb(t.bytes(LinkClass::WorkerToWorker)),
        t.msgs(LinkClass::WorkerToWorker)
    );
    println!(
        "  busiest worker ingress: {:.2} MB",
        mb(t.max_worker_ingress())
    );
    println!("  server ingress        : {:.2} MB", mb(t.server_ingress()));
}
