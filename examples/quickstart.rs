//! Quickstart: train a small ACGAN on the synthetic MNIST-like dataset on
//! a single node, watch the scores improve, and render a generated digit.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mdgan_repro::core::config::GanHyper;
use mdgan_repro::core::experiments::ExperimentScale;
use mdgan_repro::core::standalone::StandaloneGan;
use mdgan_repro::core::{ArchSpec, Evaluator};
use mdgan_repro::data::synthetic::mnist_like;
use mdgan_repro::tensor::rng::Rng64;
use mdgan_repro::tensor::Tensor;

fn main() {
    let scale = ExperimentScale::quick();
    let img = 16usize;
    println!("generating a synthetic MNIST-like dataset (16x16, 10 classes)...");
    let data = mnist_like(img, 2048, 42, 0.08);
    let (train, test) = data.split_test(512);

    println!("training the scorer classifier (the FID/IS feature extractor)...");
    let mut evaluator = Evaluator::new(&train, &test, 256, scale.seed);
    println!(
        "scorer accuracy on held-out data: {:.1}%",
        100.0 * evaluator.scorer_accuracy(&test)
    );

    let spec = ArchSpec::mlp_mnist_scaled(img);
    let mut rng = Rng64::seed_from_u64(7);
    let mut gan = StandaloneGan::new(
        &spec,
        train,
        GanHyper {
            batch: 32,
            ..GanHyper::default()
        },
        &mut rng,
    );

    println!("\ntraining a standalone ACGAN for 600 iterations...");
    let timeline = gan.train(600, 100, Some(&mut evaluator));
    println!("\n   iter |    IS ↑ |   FID ↓");
    for (it, s) in timeline.points() {
        println!("  {it:5} | {:7.3} | {:7.2}", s.inception_score, s.fid);
    }

    // Render one generated sample per digit as ASCII art.
    println!("\ngenerated digits (one per class):");
    let z = gan.gen.sample_z(10, &mut rng);
    let labels: Vec<usize> = (0..10).collect();
    let imgs = gan.gen.generate(&z, &labels, true);
    for d in 0..10 {
        println!("--- digit {d} ---");
        print_ascii(&imgs.index_axis0(d), img);
    }

    // Also dump a contact sheet for proper viewing.
    std::fs::create_dir_all("results").ok();
    let sheet = mdgan_repro::data::image_io::tile_grid(&imgs, 5);
    match mdgan_repro::data::image_io::write_image("results/quickstart_digits.pgm", &sheet) {
        Ok(()) => println!("\nwrote results/quickstart_digits.pgm (open with any image viewer)"),
        Err(e) => eprintln!("could not write contact sheet: {e}"),
    }
}

fn print_ascii(img: &Tensor, side: usize) {
    let ramp = [' ', '.', ':', '+', '#'];
    for y in 0..side {
        let mut line = String::new();
        for x in 0..side {
            let v = (img.at(&[0, y, x]) + 1.0) / 2.0; // [-1,1] -> [0,1]
            let idx = ((v * (ramp.len() - 1) as f32).round() as usize).min(ramp.len() - 1);
            line.push(ramp[idx]);
        }
        println!("{line}");
    }
}
