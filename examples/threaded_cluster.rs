//! Runs MD-GAN on the thread-per-node runtime (one OS thread per worker,
//! all communication through the simulated network) and verifies that it
//! matches the deterministic sequential runtime bit-for-bit.
//!
//! ```text
//! cargo run --release --example threaded_cluster
//! ```

use mdgan_repro::core::config::{GanHyper, KPolicy, MdGanConfig, SwapPolicy};
use mdgan_repro::core::mdgan::threaded::run_threaded;
use mdgan_repro::core::{ArchSpec, MdGan};
use mdgan_repro::data::synthetic::mnist_like;
use mdgan_repro::tensor::rng::Rng64;
use std::time::Instant;

fn main() {
    let workers = 4usize;
    let iters = 60usize;
    let img = 12usize;
    let data = mnist_like(img, workers * 128, 42, 0.08);
    let spec = ArchSpec::mlp_mnist_scaled(img);
    let cfg = MdGanConfig {
        workers,
        k: KPolicy::LogN,
        epochs_per_swap: 1.0,
        swap: SwapPolicy::Derangement,
        hyper: GanHyper { batch: 10, ..GanHyper::default() },
        iterations: iters,
        seed: 9,
        crash: Default::default(),
    };

    let mut rng = Rng64::seed_from_u64(5);
    let shards = data.shard_iid(workers, &mut rng);

    println!("running {iters} iterations on the threaded runtime ({workers} worker threads)...");
    let t0 = Instant::now();
    let threaded = run_threaded(&spec, shards.clone(), cfg.clone(), None, iters, 1_000_000);
    let threaded_time = t0.elapsed();

    println!("running the same training sequentially...");
    let t0 = Instant::now();
    let mut seq = MdGan::new(&spec, shards, cfg);
    for _ in 0..iters {
        seq.step();
    }
    let seq_time = t0.elapsed();

    let identical = threaded.gen_params == seq.gen_params();
    println!("\nthreaded : {threaded_time:?}");
    println!("sequential: {seq_time:?}");
    println!(
        "generators identical bit-for-bit: {}",
        if identical { "YES ✓" } else { "NO ✗ (bug!)" }
    );
    println!(
        "traffic identical: {}",
        if threaded.traffic.class_bytes == seq.traffic().class_bytes { "YES ✓" } else { "NO ✗" }
    );
    let mb = threaded.traffic.total_bytes() as f64 / (1024.0 * 1024.0);
    println!("total bytes moved: {mb:.2} MB");
    assert!(identical, "runtimes diverged");
}
