//! Runs MD-GAN on the thread-per-node runtime (one OS thread per worker,
//! all communication through the simulated network), verifies that it
//! matches the deterministic sequential runtime bit-for-bit, and exports
//! a telemetry run record to `results/`.
//!
//! ```text
//! cargo run --release --example threaded_cluster
//! TELEMETRY=1 cargo run --release --example threaded_cluster   # + table
//! TELEMETRY=2 cargo run --release --example threaded_cluster   # + JSONL
//! ```

use mdgan_repro::core::config::{GanHyper, KPolicy, MdGanConfig, SwapPolicy};
use mdgan_repro::core::eval::Evaluator;
use mdgan_repro::core::mdgan::threaded::run_threaded_with;
use mdgan_repro::core::{ArchSpec, MdGan};
use mdgan_repro::data::synthetic::mnist_like;
use mdgan_repro::metrics::classifier::ScorerConfig;
use mdgan_repro::telemetry::{Recorder, RunRecord, Verbosity};
use mdgan_repro::tensor::rng::Rng64;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let workers = 4usize;
    let iters = 60usize;
    let img = 12usize;
    let data = mnist_like(img, workers * 128 + 200, 42, 0.08);
    let (train, test) = data.split_test(200);
    let spec = ArchSpec::mlp_mnist_scaled(img);
    let cfg = MdGanConfig {
        workers,
        k: KPolicy::LogN,
        epochs_per_swap: 1.0,
        swap: SwapPolicy::Derangement,
        hyper: GanHyper {
            batch: 10,
            ..GanHyper::default()
        },
        iterations: iters,
        seed: 9,
        crash: Default::default(),
        ..MdGanConfig::default()
    };

    let mut rng = Rng64::seed_from_u64(5);
    let shards = train.shard_iid(workers, &mut rng);

    // Record always (so the run record is written); print per TELEMETRY.
    let verbosity = Verbosity::from_env();
    let recorder = Arc::new(Recorder::with_verbosity(verbosity.max(Verbosity::Table)));
    let mut evaluator = Evaluator::with_scorer_config(
        &train,
        &test,
        128,
        7,
        ScorerConfig {
            steps: 300,
            ..ScorerConfig::default()
        },
    );

    println!("running {iters} iterations on the threaded runtime ({workers} worker threads)...");
    let t0 = Instant::now();
    let threaded = run_threaded_with(
        &spec,
        shards.clone(),
        cfg.clone(),
        Some(&mut evaluator),
        iters,
        20,
        Arc::clone(&recorder),
    );
    let threaded_time = t0.elapsed();

    println!("running the same training sequentially...");
    let t0 = Instant::now();
    let mut seq = MdGan::new(&spec, shards, cfg.clone());
    for _ in 0..iters {
        seq.step();
    }
    let seq_time = t0.elapsed();

    let identical = threaded.gen_params == seq.gen_params();
    println!("\nthreaded : {threaded_time:?}");
    println!("sequential: {seq_time:?}");
    println!(
        "generators identical bit-for-bit: {}",
        if identical {
            "YES ✓"
        } else {
            "NO ✗ (bug!)"
        }
    );
    println!(
        "traffic identical: {}",
        if threaded.traffic.class_bytes == seq.traffic().class_bytes {
            "YES ✓"
        } else {
            "NO ✗"
        }
    );
    let mb = threaded.traffic.total_bytes() as f64 / (1024.0 * 1024.0);
    println!("total bytes moved: {mb:.2} MB");

    // Export the run record: config, scores, traffic, phase histograms,
    // per-worker tallies and the retained event history.
    let record = RunRecord::new("threaded_cluster")
        .with_config_json(cfg.to_json())
        .with_scores(threaded.timeline.score_points("threaded_cluster"))
        .with_traffic(threaded.traffic.telemetry_summary())
        .with_metric("wall_s", threaded_time.as_secs_f64())
        .with_metric(
            "final_fid",
            threaded
                .timeline
                .last()
                .map(|(_, s)| s.fid)
                .unwrap_or(f64::NAN),
        );
    match record.write_jsonl("results", &recorder) {
        Ok(path) => println!("run record: {}", path.display()),
        Err(e) => eprintln!("failed to write run record: {e}"),
    }
    if verbosity != Verbosity::Off {
        recorder.finish();
    }
    assert!(identical, "runtimes diverged");
}
