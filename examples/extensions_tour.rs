//! A tour of the §VII "perspectives" the paper sketches and this
//! repository implements: asynchronous updates, message compression,
//! byzantine workers with robust aggregation, partial discriminator
//! hosting, plus checkpoint/restore.
//!
//! ```text
//! cargo run --release --example extensions_tour
//! ```

use mdgan_repro::core::byzantine::{Aggregation, Attack};
use mdgan_repro::core::compression::Codec;
use mdgan_repro::core::config::{GanHyper, KPolicy, MdGanConfig, SwapPolicy};
use mdgan_repro::core::mdgan::asynchronous::{AsyncConfig, AsyncMdGan};
use mdgan_repro::core::{ArchSpec, MdGan};
use mdgan_repro::data::synthetic::mnist_like;
use mdgan_repro::tensor::rng::Rng64;

fn main() {
    let workers = 4usize;
    let img = 12usize;
    let data = mnist_like(img, workers * 64, 42, 0.08);
    let spec = ArchSpec::mlp_mnist_scaled(img);
    let cfg = MdGanConfig {
        workers,
        k: KPolicy::LogN,
        epochs_per_swap: 1.0,
        swap: SwapPolicy::Derangement,
        hyper: GanHyper {
            batch: 8,
            ..GanHyper::default()
        },
        iterations: 40,
        seed: 7,
        crash: Default::default(),
        ..MdGanConfig::default()
    };
    let shards = |salt: u64| {
        let mut rng = Rng64::seed_from_u64(salt);
        data.shard_iid(workers, &mut rng)
    };
    let mb = |b: u64| b as f64 / (1024.0 * 1024.0);

    // 1. Asynchronous MD-GAN (§VII.1).
    println!("== asynchronous MD-GAN (§VII.1) ==");
    let mut amd = AsyncMdGan::new(&spec, shards(1), cfg.clone(), AsyncConfig::default());
    for _ in 0..40 * workers {
        amd.step_event();
    }
    let s = amd.async_stats();
    println!(
        "applied {} per-feedback updates; mean staleness {:.2}, max {}",
        s.updates,
        s.mean_staleness(),
        s.staleness_max
    );

    // 2. Message compression (§VII.2).
    println!("\n== message compression (§VII.2) ==");
    let mut plain = MdGan::new(&spec, shards(2), cfg.clone());
    let mut small = MdGan::new(&spec, shards(2), cfg.clone())
        .with_codecs(Codec::Quantize8, Codec::TopKQuantize8 { frac: 0.25 });
    for _ in 0..40 {
        plain.step();
        small.step();
    }
    println!(
        "traffic: dense {:.2} MB  vs  q8 batches + top-25% q8 feedback {:.2} MB ({:.1}x smaller)",
        mb(plain.traffic().total_bytes()),
        mb(small.traffic().total_bytes()),
        plain.traffic().total_bytes() as f64 / small.traffic().total_bytes() as f64
    );

    // 3. Byzantine feedback + robust aggregation (§VII.3).
    println!("\n== byzantine workers (§VII.3) ==");
    let mut attacks = vec![Attack::None; workers];
    attacks[0] = Attack::SignFlip { scale: 100.0 };
    let mut defended = MdGan::new(&spec, shards(3), cfg.clone())
        .with_attacks(attacks)
        .with_aggregation(Aggregation::CoordinateMedian);
    for _ in 0..40 {
        defended.step();
    }
    println!(
        "1/{} workers sign-flips its feedback x100; coordinate-median aggregation keeps params finite: {}",
        workers,
        defended.gen_params().iter().all(|v| v.is_finite())
    );

    // 4. Fewer discriminators than workers (§VII.4).
    println!("\n== partial discriminator hosting (§VII.4) ==");
    let mut partial = MdGan::new(&spec, shards(4), cfg.clone()).with_disc_count(2);
    for _ in 0..40 {
        partial.step();
    }
    println!(
        "2 discriminators roam over {} workers; swaps performed: {}, traffic {:.2} MB",
        workers,
        partial.swaps(),
        mb(partial.traffic().total_bytes())
    );

    // 5. Checkpoint / restore.
    println!("\n== checkpoint / restore ==");
    let mut md = MdGan::new(&spec, shards(5), cfg);
    for _ in 0..10 {
        md.step();
    }
    let ck = md.checkpoint();
    let path = std::env::temp_dir().join("mdgan_tour.ckpt");
    ck.save(&path).expect("save checkpoint");
    println!(
        "saved {} sections ({} bytes) at iteration {}",
        ck.num_sections(),
        ck.byte_size(),
        ck.iteration
    );
    for _ in 0..5 {
        md.step();
    }
    let loaded = mdgan_repro::core::checkpoint::Checkpoint::load(&path).expect("load checkpoint");
    md.restore(&loaded).expect("restore checkpoint");
    println!(
        "restored to iteration {} — params match: {}",
        md.iterations(),
        md.gen_params() == ck.get("generator").unwrap()
    );
    std::fs::remove_file(&path).ok();
}
