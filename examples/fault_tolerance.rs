//! Fault tolerance (the Figure 5 scenario): workers fail-stop one by one —
//! each crash also removes that worker's data shard — while MD-GAN keeps
//! training on the survivors.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use mdgan_repro::core::config::{GanHyper, KPolicy, MdGanConfig, SwapPolicy};
use mdgan_repro::core::{ArchSpec, Evaluator, MdGan};
use mdgan_repro::data::synthetic::mnist_like;
use mdgan_repro::simnet::CrashSchedule;
use mdgan_repro::tensor::rng::Rng64;

fn main() {
    let workers = 5usize;
    let iters = 400usize;
    let img = 16usize;
    let data = mnist_like(img, 2048 + 512, 42, 0.08);
    let (train, test) = data.split_test(512);
    let mut rng = Rng64::seed_from_u64(3);
    let shards = train.shard_iid(workers, &mut rng);
    let mut evaluator = Evaluator::new(&train, &test, 256, 42);

    // One crash every I/N iterations, in random order (the paper's Fig. 5).
    let schedule = CrashSchedule::every_quantile(iters, workers, &mut rng);
    println!(
        "crash schedule (iteration, worker): {:?}",
        schedule.events()
    );

    let spec = ArchSpec::mlp_mnist_scaled(img);
    let cfg = MdGanConfig {
        workers,
        k: KPolicy::LogN,
        epochs_per_swap: 1.0,
        swap: SwapPolicy::Derangement,
        hyper: GanHyper {
            batch: 10,
            ..GanHyper::default()
        },
        iterations: iters,
        seed: 7,
        crash: schedule.clone(),
        ..MdGanConfig::default()
    };
    let mut md = MdGan::new(&spec, shards, cfg);

    println!("\n   iter | alive |    MS ↑ |   FID ↓");
    let eval_every = 50;
    let mut next_eval = 0usize;
    for i in 0..=iters {
        if i == next_eval {
            let s = evaluator.evaluate(md.generator_mut());
            println!(
                "  {i:5} | {:5} | {:7.3} | {:7.2}",
                md.alive_workers().len(),
                s.inception_score,
                s.fid
            );
            next_eval += eval_every;
        }
        if i < iters {
            md.step();
        }
    }
    println!(
        "\nall {} workers crashed by iteration {iters}; the generator kept the\n\
         knowledge it acquired while data was still reachable (compare the\n\
         last scored rows — no divergence on this MNIST-like task, matching\n\
         the paper's Figure 5 observation).",
        workers
    );
}
