//! Head-to-head: FL-GAN vs MD-GAN vs standalone on the same data, scorer
//! and iteration budget — a miniature of the paper's Figure 3 comparison,
//! including the communication bill.
//!
//! ```text
//! cargo run --release --example flgan_vs_mdgan
//! ```

use mdgan_repro::core::config::{FlGanConfig, GanHyper, KPolicy, MdGanConfig, SwapPolicy};
use mdgan_repro::core::flgan::FlGan;
use mdgan_repro::core::standalone::StandaloneGan;
use mdgan_repro::core::{ArchSpec, Evaluator, MdGan};
use mdgan_repro::data::synthetic::mnist_like;
use mdgan_repro::tensor::rng::Rng64;

fn main() {
    let workers = 10usize;
    let iters = 400usize;
    let img = 16usize;
    let data = mnist_like(img, 2048 + 512, 42, 0.08);
    let (train, test) = data.split_test(512);
    let mut evaluator = Evaluator::new(&train, &test, 256, 42);
    let spec = ArchSpec::mlp_mnist_scaled(img);
    let hyper = GanHyper {
        batch: 10,
        ..GanHyper::default()
    };

    println!("competitor            |    MS ↑ |   FID ↓ | traffic");
    println!("----------------------+---------+---------+---------");

    // Standalone (sees the whole dataset).
    let mut rng = Rng64::seed_from_u64(1);
    let mut sa = StandaloneGan::new(&spec, train.clone(), hyper, &mut rng);
    let t = sa.train(iters, iters / 4, Some(&mut evaluator));
    report("standalone b=10", &t, None);

    // FL-GAN.
    let mut rng = Rng64::seed_from_u64(2);
    let shards = train.shard_iid(workers, &mut rng);
    let mut fl = FlGan::new(
        &spec,
        shards,
        FlGanConfig {
            workers,
            epochs_per_round: 1.0,
            hyper,
            iterations: iters,
            seed: 3,
        },
    );
    let t = fl.train(iters, iters / 4, Some(&mut evaluator));
    let fl_mb = fl.traffic().total_bytes() as f64 / (1024.0 * 1024.0);
    report("FL-GAN b=10", &t, Some(fl_mb));

    // MD-GAN.
    let mut rng = Rng64::seed_from_u64(2);
    let shards = train.shard_iid(workers, &mut rng);
    let mut md = MdGan::new(
        &spec,
        shards,
        MdGanConfig {
            workers,
            k: KPolicy::LogN,
            epochs_per_swap: 1.0,
            swap: SwapPolicy::Derangement,
            hyper,
            iterations: iters,
            seed: 3,
            crash: Default::default(),
            ..MdGanConfig::default()
        },
    );
    let t = md.train(iters, iters / 4, Some(&mut evaluator));
    let md_mb = md.traffic().total_bytes() as f64 / (1024.0 * 1024.0);
    report("MD-GAN k=log(N) b=10", &t, Some(md_mb));

    println!(
        "\nworker-side compute: MD-GAN trains only D per worker (≈half of\n\
         FL-GAN's G+D), the paper's headline — see Table II and\n\
         `cargo run -p md-bench --bin table2_complexity`."
    );
}

fn report(label: &str, t: &mdgan_repro::core::ScoreTimeline, traffic_mb: Option<f64>) {
    let f = t.final_scores(2).expect("timeline not empty");
    let traffic = traffic_mb
        .map(|m| format!("{m:7.1} MB"))
        .unwrap_or_else(|| "      -".into());
    println!(
        "{label:21} | {:7.3} | {:7.2} | {traffic}",
        f.inception_score, f.fid
    );
}
