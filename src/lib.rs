//! # mdgan-repro
//!
//! Facade crate for the MD-GAN reproduction. Re-exports every sub-crate so
//! examples and integration tests can use a single dependency:
//!
//! * [`tensor`] — dense f32 tensors, matmul, conv kernels, seeded RNG.
//! * [`nn`] — layers with analytic gradients, losses, optimizers.
//! * [`data`] — synthetic MNIST/CIFAR10/CelebA-like datasets and sharding.
//! * [`metrics`] — MNIST/Inception Score and FID.
//! * [`simnet`] — simulated cluster with byte-accurate traffic accounting.
//! * [`telemetry`] — structured tracing, per-phase timing, run records.
//! * [`core`] — MD-GAN itself, plus the FL-GAN and standalone baselines.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use md_data as data;
pub use md_metrics as metrics;
pub use md_nn as nn;
pub use md_simnet as simnet;
pub use md_telemetry as telemetry;
pub use md_tensor as tensor;
pub use mdgan_core as core;
